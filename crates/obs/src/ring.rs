//! Fixed-capacity lock-free trace ring for structural events.
//!
//! Structural events — a shard split, a compaction fold, a WAL
//! truncation — are rare (hundreds per second at most) but exactly
//! what an operator needs to see *in order* when the system
//! misbehaves. The ring keeps the last `capacity` events with coarse
//! (microsecond) timestamps and two `u64` payload slots, overwriting
//! oldest-first, and guarantees a reader can never observe a torn
//! event.
//!
//! ## Why claim-by-CAS instead of a plain per-slot seqlock
//!
//! With a plain "seq odd = writing" seqlock, two writers a full lap
//! apart (indices `i` and `i + capacity`, same slot) can interleave
//! so the second leaves the slot marked complete while the first is
//! still writing payload words — a reader then accepts a torn mix of
//! two events. Here a writer must **win a CAS** from the slot's
//! previous-lap completion stamp before touching the payload, so at
//! most one writer ever owns a slot; the loser drops its event
//! (counted in [`TraceRing::dropped`]) instead of corrupting the
//! winner's. Losing requires a writer to stall for an entire lap of
//! the ring — never observed outside adversarial tests, but the
//! guarantee is what makes the reader's validation sound.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

/// One decoded event from the ring, tear-free by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number of the event (0-based claim order).
    pub seq: u64,
    /// Microseconds since the ring was created.
    pub at_us: u64,
    /// Event kind code (the instrumented subsystem's catalog).
    pub kind: u32,
    /// Resolved kind name (via the ring's registered resolver).
    pub name: &'static str,
    /// First payload word (meaning depends on `kind`).
    pub a: u64,
    /// Second payload word (meaning depends on `kind`).
    pub b: u64,
}

struct Slot {
    /// Slot lifecycle stamp. For the writer of global index `i`:
    /// claimed = `2 * i + 1` (odd), complete = `2 * i + 2` (even).
    /// Zero = never written. A reader accepts the slot only when it
    /// reads the same completion stamp before and after the payload.
    seq: AtomicU64,
    at_us: AtomicU64,
    kind: AtomicU32,
    a: AtomicU64,
    b: AtomicU64,
}

/// A fixed-capacity lock-free ring of [`TraceEvent`]s.
pub struct TraceRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
    kind_name: fn(u32) -> &'static str,
}

impl TraceRing {
    /// A ring holding the last `capacity` events (rounded up to a
    /// power of two, minimum 2). `kind_name` resolves kind codes to
    /// names when events are read back.
    pub fn new(capacity: usize, kind_name: fn(u32) -> &'static str) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<Slot> = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                at_us: AtomicU64::new(0),
                kind: AtomicU32::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
            })
            .collect();
        TraceRing {
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
            kind_name,
        }
    }

    /// Slot capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events dropped because their slot was still owned by a writer
    /// a full lap behind (see module docs) — 0 in any sane schedule.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record one event. Lock-free: one `fetch_add` to claim a global
    /// index, one CAS to own the slot, relaxed payload stores, one
    /// release store to publish.
    pub fn record(&self, kind: u32, a: u64, b: u64) {
        let at_us = self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx & self.mask) as usize];
        // The stamp the previous lap's writer left behind (0 on the
        // first lap). Winning this CAS makes us the slot's sole owner.
        let cap = self.slots.len() as u64;
        let expected = if idx >= cap { 2 * (idx - cap) + 2 } else { 0 };
        if slot
            .seq
            .compare_exchange(expected, 2 * idx + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.at_us.store(at_us, Ordering::Relaxed);
        slot.kind.store(kind, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(2 * idx + 2, Ordering::Release);
    }

    /// The current tail of events, oldest → newest.
    ///
    /// Lock-free: each candidate slot is validated by reading its
    /// completion stamp before and after the payload; a slot a racing
    /// writer currently owns (or has lapped) is simply skipped —
    /// returned events are always whole.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let lo = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - lo) as usize);
        for idx in lo..head {
            let slot = &self.slots[(idx & self.mask) as usize];
            let want = 2 * idx + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let at_us = slot.at_us.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            out.push(TraceEvent {
                seq: idx,
                at_us,
                kind,
                name: (self.kind_name)(kind),
                a,
                b,
            });
        }
        out
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(kind: u32) -> &'static str {
        match kind {
            1 => "alpha",
            2 => "beta",
            _ => "unknown",
        }
    }

    #[test]
    fn keeps_the_last_capacity_events_in_order() {
        let ring = TraceRing::new(8, names);
        for i in 0..20u64 {
            ring.record(1, i, !i);
        }
        let tail = ring.snapshot();
        assert_eq!(tail.len(), 8, "exactly the last `capacity` events");
        for (j, e) in tail.iter().enumerate() {
            assert_eq!(e.seq, 12 + j as u64, "oldest dropped first");
            assert_eq!(e.a, 12 + j as u64);
            assert_eq!(e.b, !(12 + j as u64));
            assert_eq!(e.name, "alpha");
        }
        assert_eq!(ring.recorded(), 20);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn partial_fill_returns_only_written_slots() {
        let ring = TraceRing::new(8, names);
        ring.record(2, 7, 9);
        let tail = ring.snapshot();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].kind, 2);
        assert_eq!(tail[0].name, "beta");
        assert_eq!((tail[0].a, tail[0].b), (7, 9));
    }

    #[test]
    fn concurrent_writers_never_produce_a_torn_event() {
        // Payload invariant b == !a: any torn mix of two events (or a
        // half-written slot accepted by a reader) breaks it.
        let ring = TraceRing::new(16, names);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        let x = t * 5_000 + i;
                        ring.record(1, x, !x);
                    }
                });
            }
            for _ in 0..200 {
                for e in ring.snapshot() {
                    assert_eq!(e.b, !e.a, "torn event observed");
                }
                std::thread::yield_now();
            }
        });
        assert_eq!(ring.recorded(), 20_000);
        // Whatever survived is whole and correctly ordered.
        let tail = ring.snapshot();
        assert!(tail.len() <= 16);
        assert!(tail.windows(2).all(|w| w[0].seq < w[1].seq));
        for e in &tail {
            assert_eq!(e.b, !e.a);
        }
    }
}
