//! Log-linear (HDR-style) latency histogram with bounded-error
//! quantile recovery.
//!
//! The bucket layout is the classic HDR scheme with `SUB_BITS = 5`
//! (32 sub-buckets per octave): values below 64 get one bucket each
//! (exact recovery), and every octave above is split into 32
//! equal-width linear sub-buckets, so the bucket containing any value
//! `v` has width ≤ `max(1, v / 32)` — the quantile estimate (the
//! bucket's upper bound) is within ~3.2% of the true sample. The full
//! `u64` range fits in 1920 buckets (~15 KiB of atomics).
//!
//! Recording is one relaxed `fetch_add` on the bucket plus one on the
//! running sum — no locks, no allocation — so many threads can record
//! into one histogram concurrently. Reads go through
//! [`Histogram::snapshot`]; snapshots of different histograms (or of
//! per-worker shards of one logical series) merge with
//! [`HistogramSnapshot::merge`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total buckets covering the full `u64` range: 64 exact buckets for
/// values `< 64`, then 58 octaves × 32 sub-buckets each.
pub(crate) const NUM_BUCKETS: usize = SUB * 2 + (63 - SUB_BITS as usize) * SUB;

/// The bucket index holding value `v`.
///
/// Monotone in `v`: `a <= b` implies `bucket_of(a) <= bucket_of(b)` —
/// the property that makes cumulative-count quantile walks exact at
/// bucket granularity. Exposed so tests can assert the quantile error
/// bound (`bucket_of(estimate) == bucket_of(oracle)`).
pub fn bucket_of(v: u64) -> usize {
    // Highest set bit of v (0 for v in {0,1}); buckets are exact until
    // the octave outgrows the 32-way sub-bucket resolution.
    let msb = 63 - (v | 1).leading_zeros();
    let shift = msb.saturating_sub(SUB_BITS);
    (shift as usize) * SUB + (v >> shift) as usize
}

/// The inclusive `[lo, hi]` value range of bucket `b`.
///
/// `bucket_of(lo) == bucket_of(hi) == b`; quantile estimates returned
/// by [`HistogramSnapshot::value_at_quantile`] are always some
/// bucket's `hi`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    assert!(b < NUM_BUCKETS, "bucket {b} out of range");
    if b < SUB * 2 {
        return (b as u64, b as u64);
    }
    let shift = (b / SUB - 1) as u32;
    let sub = (b % SUB + SUB) as u64;
    let lo = sub << shift;
    // (sub + 1) << shift overflows u64 exactly at the top bucket; do
    // the arithmetic in u128.
    let hi = (((sub as u128 + 1) << shift) - 1) as u64;
    (lo, hi)
}

/// A concurrent log-linear histogram of `u64` samples (nanoseconds,
/// by convention).
///
/// `record` is wait-free: one relaxed add on the bucket, one on the
/// count, one on the sum. See the module docs for the error bound.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample. Wait-free; safe to call from many threads.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record the elapsed nanoseconds since `start`.
    pub fn record_since(&self, start: Instant) {
        self.record(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// A guard that records the elapsed nanoseconds between now and
    /// its drop.
    pub fn start_timer(&self) -> Timer<'_> {
        Timer {
            hist: self,
            start: Instant::now(),
        }
    }

    /// Total samples recorded so far (relaxed read).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket array.
    ///
    /// The per-bucket counts are each read atomically and each bucket
    /// only ever grows, so concurrent snapshots see monotonically
    /// non-decreasing totals; the derived `count` is the bucket sum,
    /// keeping count and quantiles mutually consistent even when a
    /// snapshot races active recorders.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

/// Guard returned by [`Histogram::start_timer`]; records the elapsed
/// nanoseconds into the histogram when dropped.
pub struct Timer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.hist.record_since(self.start);
    }
}

/// A frozen copy of a [`Histogram`]: quantiles, mean, and merging.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Total samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the
    /// bucket containing the sample of rank `⌈q·n⌉` (1-based, clamped
    /// to `[1, n]`).
    ///
    /// Because bucket indices are monotone in the value, the returned
    /// estimate lands in the **same bucket** as the true rank-order
    /// sample — so it is ≥ the true sample and within one bucket width
    /// of it (`≤ max(1, sample/32)` absolute, exact below 64). Returns
    /// 0 for an empty snapshot.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bounds(b).1;
            }
        }
        // Unreachable when count == bucket sum; harden anyway.
        u64::MAX
    }

    /// Merge another snapshot into this one (per-bucket add) —
    /// per-worker histogram shards fold into one series this way.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_self_consistent() {
        let probes: Vec<u64> = (0..2000u64)
            .chain((6..64).map(|i| (1u64 << i) - 1))
            .chain((6..64).map(|i| 1u64 << i))
            .chain((6..64).map(|i| (1u64 << i) + 1))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(bucket_of(w[0]) <= bucket_of(w[1]), "{} vs {}", w[0], w[1]);
        }
        for &v in &probes {
            let b = bucket_of(v);
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= v && v <= hi, "v={v} b={b} lo={lo} hi={hi}");
            assert_eq!(bucket_of(lo), b);
            assert_eq!(bucket_of(hi), b);
            // Width bound: <= max(1, v/32).
            assert!(hi - lo <= (v / 32).max(1) - if v < 64 { 1 } else { 0 });
        }
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn small_values_recover_exactly() {
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 64);
        assert_eq!(s.value_at_quantile(0.0), 0);
        assert_eq!(s.value_at_quantile(1.0), 63);
        // Rank of q=0.5 over 64 samples is 32 -> value 31 exactly.
        assert_eq!(s.value_at_quantile(0.5), 31);
    }

    #[test]
    fn timer_records_a_plausible_duration() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
            std::hint::black_box(1 + 1);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert!(s.value_at_quantile(1.0) < 1_000_000_000, "under a second");
    }

    #[test]
    fn merge_is_additive() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 100, 10_000, u64::MAX] {
            a.record(v);
            b.record(v);
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 12);
        assert_eq!(m.value_at_quantile(1.0), u64::MAX);
        let solo = a.snapshot();
        assert_eq!(
            solo.value_at_quantile(0.5),
            m.value_at_quantile(0.5),
            "same distribution, same quantiles"
        );
    }
}
