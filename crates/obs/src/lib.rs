//! # li-obs — lock-free observability primitives
//!
//! The measurement layer under the serving tier: everything here is
//! designed so a hot path (a scalar lookup or insert measured in
//! hundreds of nanoseconds) can record into it for the cost of **a few
//! relaxed atomic adds — zero locks, zero allocation**, while readers
//! assemble consistent snapshots and render a Prometheus-style text
//! exposition on the side.
//!
//! Three primitives, one registry:
//!
//! * [`Counter`] / [`Gauge`] / [`GaugeSet`] — cache-line-padded
//!   striped relaxed atomics ([`metrics`]). A counter `add` is one
//!   relaxed `fetch_add` on a thread-striped cell; `value()` sums the
//!   stripes.
//! * [`Histogram`] — a log-linear (HDR-style) latency histogram
//!   ([`hist`]): 32 sub-buckets per octave, so any recorded value is
//!   recovered by [`HistogramSnapshot::value_at_quantile`] with
//!   relative error ≤ 1/32 (exact below 64). Snapshots merge, and a
//!   [`Timer`] guard records elapsed nanoseconds on drop.
//! * [`TraceRing`] — a fixed-capacity lock-free ring of structural
//!   [`TraceEvent`]s (shard split/merge, compaction fold, WAL
//!   truncation, …) with coarse timestamps; writers claim slots by
//!   CAS so a reader can never observe a torn event, and at capacity
//!   the oldest events are overwritten first.
//! * [`MetricsRegistry`] — get-or-create registration (a mutex, but
//!   only on the cold registration path) plus
//!   [`MetricsRegistry::snapshot`] → [`MetricsSnapshot`] →
//!   [`MetricsSnapshot::render_text`].
//!
//! ```
//! use li_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let ops = reg.counter("ops_total");
//! let lat = reg.histogram("op_ns");
//! for i in 0..100u64 {
//!     ops.incr();
//!     lat.record(100 + i); // pretend nanoseconds
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("ops_total"), Some(100));
//! let p99 = snap.histogram("op_ns").unwrap().value_at_quantile(0.99);
//! assert!(p99 >= 198 && p99 <= 205);
//! assert!(snap.render_text().contains("ops_total 100"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod metrics;
pub mod ring;

pub use hist::{bucket_bounds, bucket_of, Histogram, HistogramSnapshot, Timer};
pub use metrics::{Counter, Gauge, GaugeSet, MetricsRegistry, MetricsSnapshot, Sampler};
pub use ring::{TraceEvent, TraceRing};
