//! Background rebalancing: shard rebuilds off the insert path.
//!
//! PR 4's rebalancer ran **inline**: the insert that pushed a shard
//! over its threshold executed the split — export, retrain, router
//! refit — under the topology *write* lock, stalling every concurrent
//! insert and snapshot for the duration of the rebuild. Both
//! *Benchmarking Learned Indexes* (Marcus et al.) and Google's
//! disk-based learned-index deployment report exactly this shape of
//! problem: background reorganization, not steady-state lookup, is
//! where write-heavy deployments spend their tail latency.
//!
//! [`RebalanceWorker`] moves that work to a dedicated thread:
//!
//! ```text
//!  insert(k) ──▶ owner shard           (topology READ lock only)
//!      │
//!      ├─ record(len watermark, hot)──▶ WorkerLink   (lock-free atomics)
//!      └─ hot or periodic? ──────────▶ signal()      (mpsc wake, collapsed
//!                                          │          to one in-flight msg)
//!                                          ▼
//!                                   rebalance worker thread
//!                                   loop per pass:
//!                                     0. compact full run stacks (tiered
//!                                        mode: K sealed runs → base, ONE
//!                                        retrain, no topology lock)
//!                                     1. observe + plan      (read lock)
//!                                     2. export + retrain    (NO lock —
//!                                        inserts keep flowing into the
//!                                        old shards)
//!                                     3. publish + drain     (brief write
//!                                        lock: re-route the writes that
//!                                        raced in by the NEW bounds, swap
//!                                        the Arc<Topology>)
//! ```
//!
//! The worker owns [`crate::rebalance::plan`] execution while attached:
//! inserts never rebalance inline, they only record pressure into the
//! link's lock-free counters and (rarely — when a shard runs hot or the
//! periodic cadence is crossed) send one wake message. Dropping the
//! worker detaches the link, joins the thread, and returns the
//! structure to inline rebalancing.
//!
//! Snapshot consistency is unchanged from the inline path: a topology
//! is still published as one `Arc` swap under the write lock, so a
//! reader observes a pre- or post-rebalance topology, never a torn
//! mixture. What changes is *who waits*: the expensive rebuild happens
//! with no topology lock held, and the write lock is held only for the
//! straggler drain — O(1) length checks when nothing raced in (the
//! common case), a linear diff of the touched shard otherwise — never
//! for the retrain.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::rebalance::RebalanceAction;
use crate::sharded_writable::{BackgroundStep, ShardedWritable};

/// Wake-channel message from inserters (or the handle) to the worker.
enum Wake {
    /// Pressure was recorded; run a rebalance pass.
    Work,
    /// The handle is shutting down; exit the loop.
    Shutdown,
}

/// The lock-free pressure board + wake channel linking a
/// [`ShardedWritable`]'s inserters to the background worker.
///
/// Inserters touch only atomics on the hot path ([`WorkerLink::record`])
/// and send at most one wake message per worker pass
/// ([`WorkerLink::signal`] collapses signal storms with a flag swap).
#[derive(Debug)]
pub(crate) struct WorkerLink {
    /// Set when an inserter observes its owner shard above the split
    /// threshold; cleared when the worker begins a pass.
    hot: AtomicBool,
    /// Successful (key-adding) inserts since the worker's last pass.
    since_pass: AtomicUsize,
    /// Shard-length high-watermark observed by inserters since the
    /// worker's last pass.
    max_len_seen: AtomicUsize,
    /// Whether a wake message is already in flight (collapses storms).
    signaled: AtomicBool,
    /// Set once, when the worker thread exits (shutdown or panic).
    /// `wait_idle` checks it so nobody blocks on a worker that will
    /// never finish another pass.
    dead: AtomicBool,
    /// Test hook: make the worker panic at the start of its next pass.
    #[cfg(test)]
    pub(crate) fail_next_pass: AtomicBool,
    tx: Sender<Wake>,
    /// Worker idleness: true iff the worker finished a pass and no new
    /// signal has arrived since. Guarded by `idle`'s mutex together
    /// with the `signaled` flag (see `signal`/`finish_pass`).
    idle: Mutex<bool>,
    idle_cv: Condvar,
}

impl WorkerLink {
    fn new(tx: Sender<Wake>) -> Self {
        Self {
            hot: AtomicBool::new(false),
            since_pass: AtomicUsize::new(0),
            max_len_seen: AtomicUsize::new(0),
            signaled: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            #[cfg(test)]
            fail_next_pass: AtomicBool::new(false),
            tx,
            idle: Mutex::new(true),
            idle_cv: Condvar::new(),
        }
    }

    /// Record insert pressure — called on every successful insert (or
    /// batch) while a worker is attached. Lock-free: three atomic ops.
    pub(crate) fn record(&self, newly: usize, owner_len: usize, owner_hot: bool) {
        self.since_pass.fetch_add(newly, Ordering::Relaxed);
        self.max_len_seen.fetch_max(owner_len, Ordering::Relaxed);
        if owner_hot {
            self.hot.store(true, Ordering::Relaxed);
        }
    }

    /// Wake the worker. At most one message is in flight at a time: the
    /// first signaler after a pass starts sends, the rest see the flag
    /// already set and return immediately.
    pub(crate) fn signal(&self) {
        if !self.signaled.swap(true, Ordering::AcqRel) {
            // Order matters: mark not-idle BEFORE sending, so a
            // `wait_until_stable` caller can never observe idle=true
            // while a wake message is queued.
            *self.idle_lock() = false;
            // A send error means the worker already exited (handle
            // dropped mid-signal); pressure is then simply dropped —
            // the structure is back in inline mode for future inserts.
            let _ = self.tx.send(Wake::Work);
        }
    }

    /// Worker-side: start a pass. Re-arms the signal flag (signals
    /// arriving from here on send a fresh wake message, so pressure
    /// recorded *during* the pass is never lost) and drains the board.
    fn begin_pass(&self) -> Pressure {
        self.signaled.store(false, Ordering::Release);
        Pressure {
            hot: self.hot.swap(false, Ordering::Relaxed),
            inserts: self.since_pass.swap(0, Ordering::Relaxed),
            max_len_seen: self.max_len_seen.swap(0, Ordering::Relaxed),
        }
    }

    /// Worker-side: end a pass. Marks the link idle unless a new signal
    /// arrived while the pass ran (checked under the idle mutex, which
    /// `signal` also takes — so the flag and the mutex agree).
    fn finish_pass(&self) {
        let mut idle = self.idle_lock();
        if !self.signaled.load(Ordering::Acquire) {
            *idle = true;
            self.idle_cv.notify_all();
        }
    }

    /// Worker-side: the thread is exiting (shutdown or panic). Every
    /// current and future `wait_idle` caller must return instead of
    /// blocking on a pass that will never finish. Taken under the idle
    /// mutex so a waiter between its flag check and its `cv.wait` can't
    /// miss the wake-up.
    pub(crate) fn mark_dead(&self) {
        let _idle = self.idle_lock();
        self.dead.store(true, Ordering::Release);
        self.idle_cv.notify_all();
    }

    /// Block until the worker is idle (pass finished, no signal
    /// pending) or the deadline passes. Returns whether it became idle;
    /// returns `false` immediately if the worker thread is dead (it
    /// will never become idle again).
    fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut idle = self.idle_lock();
        while !*idle {
            if self.dead.load(Ordering::Acquire) {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .idle_cv
                .wait_timeout(idle, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            idle = guard;
        }
        true
    }

    // Poison tolerance: the idle mutex guards a single `bool`, which
    // cannot be left in a torn state by a panicking holder — every
    // critical section is one load/store. A panic elsewhere on the
    // worker thread (caught in `worker_loop`'s catch_unwind) must not
    // turn every later `signal`/`wait_idle` into a second panic.
    fn idle_lock(&self) -> std::sync::MutexGuard<'_, bool> {
        self.idle.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Pressure drained from the board at the start of a worker pass
/// (diagnostics; the worker re-observes exact lens itself).
#[derive(Debug, Clone, Copy)]
struct Pressure {
    hot: bool,
    inserts: usize,
    max_len_seen: usize,
}

/// Counters the worker thread publishes for the handle (and tests).
///
/// Structural totals (splits, merges, compactions, runs folded) are
/// deliberately **absent**: those live in the structure's
/// [`ServeMetrics`](crate::ServeMetrics) registry — the single source
/// of truth — and the handle's accessors read them from there against
/// an attach-time baseline. Only worker-private bookkeeping (passes,
/// races, drained pressure) is tracked here.
#[derive(Debug, Default)]
struct WorkerStats {
    passes: AtomicUsize,
    races: AtomicUsize,
    /// Cumulative inserts drained off the pressure board.
    pressure_inserts: AtomicUsize,
    /// Passes whose drained pressure included a hot-shard observation.
    hot_wakes: AtomicUsize,
    /// High-watermark of shard lengths reported by inserters.
    max_len_seen: AtomicUsize,
    /// Set if the worker thread panicked (the panic is contained: the
    /// worker detaches itself so the structure returns to inline
    /// rebalancing, and waiters are woken instead of hanging).
    panicked: AtomicBool,
}

/// A dedicated background rebalance thread for a [`ShardedWritable`].
///
/// While the worker is attached, it **owns** rebalancing: inserts only
/// record pressure into lock-free counters and signal the worker over
/// a channel; the worker rebuilds split/merge topologies *off* the
/// insert path and publishes them with an incremental hand-off (writes
/// that raced into a shard mid-rebuild are re-routed by the new
/// topology's ownership bounds). Dropping the handle shuts the thread
/// down, joins it, and re-enables inline rebalancing.
///
/// # Examples
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use li_serve::{RebalanceWorker, ShardedWritable, ShardedWritableConfig};
///
/// let sw = Arc::new(ShardedWritable::new(
///     (0..256u64).collect::<Vec<_>>(),
///     2,
///     ShardedWritableConfig::default(),
/// ));
/// let worker = RebalanceWorker::spawn(Arc::clone(&sw));
/// assert!(sw.has_background_worker());
///
/// for k in 256..1024u64 {
///     sw.insert(k); // records pressure; signals the worker as needed
/// }
/// worker.kick(); // force a scan now rather than waiting for a trigger
/// assert!(worker.wait_until_stable(Duration::from_secs(10)));
///
/// drop(worker); // detach: rebalancing is inline again
/// assert!(!sw.has_background_worker());
/// ```
#[derive(Debug)]
pub struct RebalanceWorker {
    sw: Arc<ShardedWritable>,
    link: Arc<WorkerLink>,
    stats: Arc<WorkerStats>,
    /// Registry totals at attach time. The structural accessors
    /// (`splits()`, `merges()`, `compactions()`, `runs_compacted()`)
    /// are thin reads of the structure's metrics registry minus these
    /// baselines — the registry is the single source of truth, so the
    /// worker's view and [`ShardedWritable::splits`] & friends can
    /// never drift apart.
    base: Baseline,
    handle: Option<JoinHandle<()>>,
}

/// Structural-counter totals captured from the registry at attach
/// time, so the handle reports only actions applied while attached.
#[derive(Debug, Clone, Copy)]
struct Baseline {
    splits: u64,
    merges: u64,
    compactions: u64,
    runs_compacted: u64,
    backend_selections: u64,
    backend_switches: u64,
}

impl RebalanceWorker {
    /// Spawn the worker thread and attach it to `sw`. From this moment
    /// until the handle is dropped, inserts on `sw` never rebalance
    /// inline.
    ///
    /// # Panics
    /// If another worker is already attached to `sw`.
    pub fn spawn(sw: Arc<ShardedWritable>) -> Self {
        let (tx, rx) = mpsc::channel();
        let link = Arc::new(WorkerLink::new(tx));
        // Baseline the structural counters before attaching: everything
        // the registry accrues from here on happened on our watch.
        let obs = sw.metrics_handle();
        let base = Baseline {
            splits: obs.splits.value(),
            merges: obs.shard_merges.value(),
            compactions: obs.compactions.value(),
            runs_compacted: obs.runs_compacted.value(),
            backend_selections: obs.backend_selections.value(),
            backend_switches: obs.backend_switches.value(),
        };
        sw.attach_worker(Arc::clone(&link));
        let stats = Arc::new(WorkerStats::default());
        let spawned = {
            let sw = Arc::clone(&sw);
            let link = Arc::clone(&link);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("li-rebalance".into())
                .spawn(move || {
                    // Contain panics to this thread: a worker that dies
                    // mid-pass must hand rebalancing back to the insert
                    // path (self-detach) and wake anyone blocked in
                    // `wait_until_stable` (mark_dead) — never strand
                    // the structure with a phantom worker attached.
                    // AssertUnwindSafe is sound here: the structures
                    // the closure borrows are the lock-protected
                    // `ShardedWritable` (whose guards recover from
                    // poison because every critical section leaves the
                    // data valid) and atomics.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        worker_loop(&sw, &link, &rx, &stats);
                    }));
                    if result.is_err() {
                        stats.panicked.store(true, Ordering::Release);
                        sw.detach_worker();
                    }
                    link.mark_dead();
                })
        };
        let handle = match spawned {
            Ok(handle) => handle,
            Err(e) => {
                // Detach before unwinding: otherwise the structure
                // would signal a worker that never existed and neither
                // rebalance mode would ever run again.
                sw.detach_worker();
                panic!("failed to spawn the rebalance worker thread: {e}");
            }
        };
        Self {
            sw,
            link,
            stats,
            base,
            handle: Some(handle),
        }
    }

    /// Signal the worker to run a pass now, without waiting for an
    /// insert to trigger one (e.g. to drain a cold initial topology).
    pub fn kick(&self) {
        self.link.signal();
    }

    /// Block until the worker has finished a pass with no signal
    /// pending (the topology was stable when it last looked), or the
    /// timeout expires. Returns whether it quiesced in time — `false`
    /// immediately (no hang) if the worker thread has died.
    pub fn wait_until_stable(&self, timeout: Duration) -> bool {
        self.link.wait_idle(timeout)
    }

    /// Whether the worker thread panicked. A panicked worker has
    /// already detached itself — inserts rebalance inline again — and
    /// [`wait_until_stable`](Self::wait_until_stable) returns `false`
    /// rather than blocking on it.
    pub fn panicked(&self) -> bool {
        self.stats.panicked.load(Ordering::Acquire)
    }

    /// Shard splits applied since this worker attached.
    ///
    /// A thin read of the registry's `li_shard_splits_total` counter
    /// against the attach-time baseline — the same counter
    /// [`ShardedWritable::splits`](crate::ShardedWritable::splits)
    /// reports, so the two can never drift. While attached, the worker
    /// owns rebalancing, so this is exactly the worker's own tally
    /// (plus any manual [`ShardedWritable::rebalance`]
    /// (crate::ShardedWritable::rebalance) calls the owner raced in).
    pub fn splits(&self) -> usize {
        (self.sw.metrics_handle().splits.value()).saturating_sub(self.base.splits) as usize
    }

    /// Shard merges applied since this worker attached (thin read of
    /// `li_shard_merges_total`; see [`RebalanceWorker::splits`]).
    pub fn merges(&self) -> usize {
        (self.sw.metrics_handle().shard_merges.value()).saturating_sub(self.base.merges) as usize
    }

    /// Run-stack compactions applied since this worker attached
    /// (tiered mode: shards whose sealed runs were folded into the
    /// base with one retrain). While attached, the worker is the
    /// *only* compactor, so this equals the structure's own
    /// [`ShardedWritable::compactions`](crate::ShardedWritable::compactions)
    /// counter — both are thin reads of `li_compactions_total`.
    pub fn compactions(&self) -> usize {
        (self.sw.metrics_handle().compactions.value()).saturating_sub(self.base.compactions)
            as usize
    }

    /// Sealed runs folded since this worker attached (thin read of
    /// `li_runs_compacted_total`).
    pub fn runs_compacted(&self) -> usize {
        (self.sw.metrics_handle().runs_compacted.value()).saturating_sub(self.base.runs_compacted)
            as usize
    }

    /// Backend grid-searches run since this worker attached (thin read
    /// of `li_backend_selections_total`). Under [`crate::Backend::Auto`]
    /// (crate::Backend::Auto) every shard rebuild the worker publishes
    /// — each split half, each merge, each compaction — re-runs
    /// selection exactly once, so this tracks the worker's rebuild
    /// tally shard-for-shard.
    pub fn backend_selections(&self) -> usize {
        (self.sw.metrics_handle().backend_selections.value())
            .saturating_sub(self.base.backend_selections) as usize
    }

    /// Selections that flipped a shard's backend family (RMI ↔ tree)
    /// since this worker attached (thin read of
    /// `li_backend_switches_total`).
    pub fn backend_switches(&self) -> usize {
        (self.sw.metrics_handle().backend_switches.value())
            .saturating_sub(self.base.backend_switches) as usize
    }

    /// Rebalance passes the worker has completed (one per wake).
    pub fn passes(&self) -> usize {
        self.stats.passes.load(Ordering::Relaxed)
    }

    /// Rebuilds discarded because the topology changed between observe
    /// and publish (another publisher won the race; the worker
    /// re-planned from the fresh topology).
    pub fn races(&self) -> usize {
        self.stats.races.load(Ordering::Relaxed)
    }

    /// Cumulative successful inserts drained off the pressure board
    /// (how much write traffic the worker has accounted for).
    pub fn pressure_inserts(&self) -> usize {
        self.stats.pressure_inserts.load(Ordering::Relaxed)
    }

    /// Passes that began with a hot-shard observation on the board
    /// (as opposed to periodic-cadence or manual kicks).
    pub fn hot_wakes(&self) -> usize {
        self.stats.hot_wakes.load(Ordering::Relaxed)
    }

    /// High-watermark of owner-shard lengths reported by inserters
    /// since the worker started.
    pub fn max_len_seen(&self) -> usize {
        self.stats.max_len_seen.load(Ordering::Relaxed)
    }

    /// The structure this worker rebalances.
    pub fn target(&self) -> &Arc<ShardedWritable> {
        &self.sw
    }
}

impl Drop for RebalanceWorker {
    fn drop(&mut self) {
        // Detach first: inserts fall back to inline rebalancing and no
        // new Work messages are produced; then unblock the thread. A
        // panicked worker already detached itself — `detach_worker` is
        // a plain slot clear, so the second call is a no-op.
        self.sw.detach_worker();
        let _ = self.link.tx.send(Wake::Shutdown);
        if let Some(handle) = self.handle.take() {
            // A join error means the thread panicked outside the
            // pass-level catch_unwind (it shouldn't — the whole loop is
            // wrapped — but belt and braces). Record it; never
            // propagate a panic out of Drop, which would abort the
            // process if the handle is itself dropped during a panic.
            if handle.join().is_err() {
                self.stats.panicked.store(true, Ordering::Release);
            }
        }
    }
}

/// The worker thread body: sleep on the channel, and per wake run
/// rebalance steps until the topology is stable (bounded by the same
/// backstop budget as the inline loop).
fn worker_loop(sw: &ShardedWritable, link: &WorkerLink, rx: &Receiver<Wake>, stats: &WorkerStats) {
    while let Ok(Wake::Work) = rx.recv() {
        let pressure = link.begin_pass();
        #[cfg(test)]
        if link.fail_next_pass.swap(false, Ordering::Relaxed) {
            panic!("injected rebalance-worker panic (test)");
        }
        stats
            .pressure_inserts
            .fetch_add(pressure.inserts, Ordering::Relaxed);
        if pressure.hot {
            stats.hot_wakes.fetch_add(1, Ordering::Relaxed);
        }
        // The watermark is diagnostic; the pass below re-observes exact
        // lens under the read lock before planning.
        stats
            .max_len_seen
            .fetch_max(pressure.max_len_seen, Ordering::Relaxed);
        // Tiered mode: fold full run stacks into their bases first —
        // one retrain per K sealed runs, off the insert path, before
        // split/merge planning looks at shard shapes. Inserters never
        // compact while we are attached (they only signal); the folds
        // land in the structure's metrics registry, which the handle's
        // accessors read back.
        let _ = sw.compact_pending();
        // Run steps until the topology is stable. The per-round budget
        // is the same backstop as the inline loop; a round that
        // exhausts it with work remaining (a giant backlog, or a storm
        // of publish races) gets a few more bounded rounds instead of
        // stranding an unstable topology as "idle".
        let budget = sw.rebalance_budget();
        let mut stable = false;
        'pass: for _round in 0..4 {
            for _ in 0..budget {
                match sw.rebalance_step_background() {
                    // Applied actions are already counted by the
                    // publish path into the metrics registry.
                    BackgroundStep::Applied(RebalanceAction::Split { .. })
                    | BackgroundStep::Applied(RebalanceAction::Merge { .. }) => {}
                    BackgroundStep::Raced => {
                        stats.races.fetch_add(1, Ordering::Relaxed);
                    }
                    BackgroundStep::Stable => {
                        stable = true;
                        break 'pass;
                    }
                }
            }
        }
        stats.passes.fetch_add(1, Ordering::Relaxed);
        if !stable {
            // Even the extra rounds ran out with work remaining: re-
            // signal ourselves so the backlog resumes on the next wake
            // instead of stranding an over-budget topology as "idle"
            // until some future insert happens to signal. Each resumed
            // pass applies real actions (or observes a newer
            // generation), so this converges — it is a continuation,
            // not a spin.
            link.signal();
        }
        link.finish_pass();
    }
    // Shutdown (or every sender gone): fall off and let the thread end.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rebalance::RebalanceConfig;
    use crate::sharded_writable::ShardedWritableConfig;

    fn small_cfg() -> ShardedWritableConfig {
        ShardedWritableConfig {
            merge_threshold: 8,
            leaf_fraction: 1.0 / 16.0,
            check_interval: 16,
            rebalance: RebalanceConfig {
                max_shard_len: 64,
                merge_max_len: 16,
                max_mean_err: None,
                max_shards: 16,
            },
            ..ShardedWritableConfig::default()
        }
    }

    #[test]
    fn worker_splits_hot_shards_off_the_insert_path() {
        let sw = Arc::new(ShardedWritable::new(vec![0u64], 1, small_cfg()));
        let worker = RebalanceWorker::spawn(Arc::clone(&sw));
        for k in 1..=400u64 {
            sw.insert(k * 3);
        }
        assert!(worker.wait_until_stable(Duration::from_secs(30)));
        assert!(worker.splits() >= 1, "worker must have split");
        // In background mode ONLY the worker rebalances: the global
        // counters are exactly the worker's.
        assert_eq!(worker.splits(), sw.splits());
        assert_eq!(worker.merges(), sw.shard_merges());
        // Stability means every shard is within budget.
        for len in sw.shard_lens() {
            assert!(len <= small_cfg().rebalance.max_shard_len, "len {len}");
        }
        assert_eq!(sw.len(), 401);
    }

    #[test]
    fn worker_merges_cold_topologies_on_kick() {
        let data: Vec<u64> = (0..16u64).map(|i| i * 7).collect();
        let sw = Arc::new(ShardedWritable::new(data.clone(), 8, small_cfg()));
        let worker = RebalanceWorker::spawn(Arc::clone(&sw));
        worker.kick();
        assert!(worker.wait_until_stable(Duration::from_secs(30)));
        assert!(worker.merges() >= 1, "cold neighbors must merge");
        assert!(sw.shard_count() < 8);
        assert_eq!(sw.range_keys(0, u64::MAX), data);
    }

    #[test]
    fn drop_detaches_and_restores_inline_rebalancing() {
        let sw = Arc::new(ShardedWritable::new(vec![0u64], 1, small_cfg()));
        {
            let worker = RebalanceWorker::spawn(Arc::clone(&sw));
            assert!(sw.has_background_worker());
            worker.kick();
            assert!(worker.wait_until_stable(Duration::from_secs(30)));
        }
        assert!(!sw.has_background_worker());
        // Inline mode again: this load rebalances on the inserting
        // thread, exactly like PR 4.
        for k in 1..=300u64 {
            sw.insert(k * 2);
        }
        assert!(sw.splits() >= 1);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attach_panics() {
        let sw = Arc::new(ShardedWritable::new(vec![0u64], 1, small_cfg()));
        let _a = RebalanceWorker::spawn(Arc::clone(&sw));
        let _b = RebalanceWorker::spawn(Arc::clone(&sw));
    }

    #[test]
    fn manual_rebalance_races_are_absorbed() {
        // A manual rebalance() call while the worker runs can win the
        // publish race; the worker must discard its stale rebuild and
        // re-plan, never publish over the newer topology.
        let sw = Arc::new(ShardedWritable::new(vec![0u64], 1, small_cfg()));
        let worker = RebalanceWorker::spawn(Arc::clone(&sw));
        std::thread::scope(|scope| {
            let sw_ref = &sw;
            scope.spawn(move || {
                for k in 1..=500u64 {
                    sw_ref.insert(k * 5);
                    if k.is_multiple_of(100) {
                        // Deliberately compete with the worker.
                        sw_ref.rebalance();
                    }
                }
            });
        });
        assert!(worker.wait_until_stable(Duration::from_secs(30)));
        // Exact contents survived the races.
        assert_eq!(sw.len(), 501);
        let all = sw.range_keys(0, u64::MAX);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(all.len(), 501);
        // Every publication is accounted for exactly once.
        assert_eq!(
            sw.generation(),
            (sw.splits() + sw.shard_merges()) as u64,
            "torn generation accounting"
        );
    }

    #[test]
    fn worker_panic_is_contained_and_restores_inline_mode() {
        let sw = Arc::new(ShardedWritable::new(
            (0..64u64).map(|i| i * 3).collect::<Vec<_>>(),
            2,
            small_cfg(),
        ));
        let worker = RebalanceWorker::spawn(Arc::clone(&sw));
        assert!(!worker.panicked());

        // Arm the injection and wake the worker: its next pass dies.
        worker.link.fail_next_pass.store(true, Ordering::Relaxed);
        worker.kick();

        // A dead worker must make this RETURN false, not hang forever.
        assert!(
            !worker.wait_until_stable(Duration::from_secs(30)),
            "wait_until_stable must report failure for a dead worker"
        );
        assert!(worker.panicked());
        // The dying worker detached itself: rebalancing is inline again
        // even though the handle is still alive.
        assert!(!sw.has_background_worker());

        // The structure itself is unharmed and rebalances inline.
        for k in 0..=300u64 {
            sw.insert(k * 2 + 1);
        }
        assert!(sw.splits() >= 1, "inline splitting must have resumed");
        assert!(sw.contains(601));
        for len in sw.shard_lens() {
            assert!(len <= small_cfg().rebalance.max_shard_len, "len {len}");
        }

        // Dropping the handle after the panic must also be safe.
        drop(worker);
        assert!(!sw.has_background_worker());
    }

    #[test]
    fn dead_link_unblocks_waiters() {
        let (tx, _rx) = mpsc::channel();
        let link = WorkerLink::new(tx);
        // Pretend a pass started (idle=false) and the worker then died
        // without finishing it.
        link.signal();
        link.mark_dead();
        let start = Instant::now();
        assert!(!link.wait_idle(Duration::from_secs(30)));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "dead flag must short-circuit the wait, not ride out the timeout"
        );
    }

    #[test]
    fn pressure_board_records_and_drains() {
        let (tx, _rx) = mpsc::channel();
        let link = WorkerLink::new(tx);
        link.record(3, 100, false);
        link.record(2, 400, true);
        let p = link.begin_pass();
        assert_eq!(p.inserts, 5);
        assert_eq!(p.max_len_seen, 400);
        assert!(p.hot);
        let p2 = link.begin_pass();
        assert_eq!(p2.inserts, 0);
        assert!(!p2.hot);
    }
}
