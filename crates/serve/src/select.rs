//! Adaptive per-shard backend selection.
//!
//! The paper's Learned Index Framework "automatically chooses the best
//! index configuration" per workload (§3.1); this module applies that
//! idea *per shard*: instead of one global backend for every shard,
//! each shard's own trained statistics decide what serves it. The
//! pipeline is
//!
//! 1. **probe** — train a cheap probe RMI over the shard (through the
//!    shared retune loop, so a hard shard gets its densification
//!    chances first) and read its [`RmiStats`]: key count, model error,
//!    model density, size;
//! 2. **grid-search** — [`choose`] scores every candidate backend ×
//!    tuning (RMI as probed; B-Trees at pages 64/128/256; interpolation
//!    B-Tree; FAST-style tree) with a branch-and-cache cost model over
//!    those stats and picks the cheapest, ties broken by fixed
//!    candidate order so the decision is deterministic;
//! 3. **build** — construct the winner over the same zero-copy shard
//!    slice.
//!
//! [`choose`] is a *pure function of the stats*: same `RmiStats` in,
//! same [`BackendChoice`] out, no ambient state. That makes every
//! decision replayable (the stats are logged alongside the
//! [`BACKEND_SELECT`](crate::obs::events::BACKEND_SELECT) event) and
//! lets the selection-pinning tests freeze the policy.
//!
//! Keysets with duplicate keys never reach the probe: the RMI input
//! contract is sorted *unique* keys, so [`AutoShardBuilder`] scans for
//! adjacent duplicates first and routes multiset shards straight to the
//! FAST-style tree — the one backend that is exact on duplicates.
//!
//! The write tier reuses the same decision through
//! `train_selected`: its delta base must stay an RMI (merges retrain
//! it in place), so a non-RMI choice materializes as a *hybrid* RMI
//! whose leaves are all B-Tree pages at the chosen page size —
//! structurally a paged tree, administratively still an `Rmi`.

use std::sync::Arc;

use li_btree::{BTreeIndex, FastTree, InterpBTree};
use li_core::rmi::{Rmi, RmiConfig, RmiStats, TopModel};
use li_index::{KeyStore, RangeIndex};

use crate::builder::{retune_rmi, RetunePolicy, ShardBuilder};
use crate::obs::{events, ServeMetrics};

/// The backend (plus tuning) selected for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Keep the probe RMI (it already won the grid search).
    Rmi,
    /// Cache-optimized B-Tree at this page size.
    BTree {
        /// Keys per node.
        page_size: usize,
    },
    /// Interpolation B-Tree at this page size.
    Interp {
        /// Keys per data page.
        page_size: usize,
    },
    /// FAST-style branch-free implicit tree (also the forced choice for
    /// multiset shards — it is exact on duplicates).
    Fast,
}

impl BackendChoice {
    /// Backend family name, without tuning parameters.
    pub fn family(&self) -> &'static str {
        match self {
            BackendChoice::Rmi => "rmi",
            BackendChoice::BTree { .. } => "btree",
            BackendChoice::Interp { .. } => "interp",
            BackendChoice::Fast => "fast",
        }
    }

    /// Stable numeric family code for event payloads
    /// (0 = rmi, 1 = btree, 2 = interp, 3 = fast).
    pub fn code(&self) -> u64 {
        match self {
            BackendChoice::Rmi => 0,
            BackendChoice::BTree { .. } => 1,
            BackendChoice::Interp { .. } => 2,
            BackendChoice::Fast => 3,
        }
    }

    /// The page size the write tier's hybrid materialization should
    /// use for this choice (the write-tier base must stay an RMI, so
    /// tree-family choices become all-B-Tree-leaf hybrids).
    fn hybrid_page(&self) -> usize {
        match self {
            BackendChoice::Rmi => 128,
            BackendChoice::BTree { page_size } | BackendChoice::Interp { page_size } => {
                (*page_size).clamp(16, 4096)
            }
            BackendChoice::Fast => 64,
        }
    }
}

/// Cost-model constants, in arbitrary "nanosecond-ish" units. Absolute
/// values don't matter — only the ratios do. Fitted against measured
/// mean lookup latencies of every backend over every gauntlet
/// distribution at shard scale (10k–100k keys; the numbers in
/// EXPERIMENTS.md): the auto pick must land within 1.1× of the best
/// hand-picked backend on every gauntlet distribution.
mod cost {
    /// Evaluating the two linear models of a probe RMI.
    pub const RMI_EVAL: f64 = 25.0;
    /// One step of the RMI's model-biased last-mile binary search over
    /// the *mean* error window.
    pub const RMI_SEARCH_STEP: f64 = 4.5;
    /// Per-step weight for the *worst-case* window — a shard whose max
    /// error dwarfs its mean still pays tail latency.
    pub const RMI_TAIL_STEP: f64 = 1.2;
    /// Linear penalty per position of mean error: huge windows spill
    /// out of cache, so the cost must eventually outgrow every tree's.
    pub const RMI_WINDOW_LINEAR: f64 = 0.018;
    /// Entering one B-Tree node (the pointer-chase).
    pub const NODE_MISS: f64 = 14.0;
    /// One compare step inside an already-resident B-Tree node.
    pub const NODE_STEP: f64 = 1.5;
    /// Entering one interpolation level. Interpolation convergence is
    /// distribution-dependent and the probe stats can't see it, so the
    /// level cost is deliberately conservative (measured: the
    /// interpolation B-Tree loses on every gauntlet distribution).
    pub const INTERP_MISS: f64 = 40.0;
    /// Per-compare factor inside an interpolation level.
    pub const INTERP_STEP: f64 = 2.0;
    /// Floor cost of one FAST-tree level (fully cache-resident tree).
    pub const FAST_LEVEL_MIN: f64 = 2.0;
    /// FAST's per-level cost grows with the tree: every level of an
    /// Eytzinger descent is a dependent load, and once the padded tree
    /// outgrows L2 those loads miss. Modeled as `lg(n) − FAST_RESIDENT`
    /// per level, floored at [`FAST_LEVEL_MIN`].
    pub const FAST_RESIDENT: f64 = 12.0;
}

/// `log2(x)` clamped below at 0 — window/level arithmetic helper.
fn lg(x: f64) -> f64 {
    x.max(1.0).log2()
}

/// Predicted mean lookup cost of keeping the probe RMI.
fn cost_rmi(stats: &RmiStats) -> f64 {
    let mean_window = 2.0 * stats.mean_abs_err + 2.0;
    let max_window = 2.0 * stats.max_abs_err as f64 + 2.0;
    cost::RMI_EVAL
        + cost::RMI_SEARCH_STEP * lg(mean_window)
        + cost::RMI_TAIL_STEP * lg(max_window)
        + cost::RMI_WINDOW_LINEAR * stats.mean_abs_err
}

/// Tree height of an n-key tree with the given fanout (≥ 1 level).
fn levels(n: usize, fanout: usize) -> f64 {
    (lg(n as f64) / lg(fanout as f64)).ceil().max(1.0)
}

/// Predicted mean lookup cost of a B-Tree at `page_size`.
fn cost_btree(n: usize, page_size: usize) -> f64 {
    levels(n, page_size) * (cost::NODE_MISS + cost::NODE_STEP * lg(page_size as f64))
}

/// Predicted mean lookup cost of an interpolation B-Tree at
/// `page_size`. Two interpolation levels (separators, then the page).
fn cost_interp(page_size: usize) -> f64 {
    2.0 * (cost::INTERP_MISS + cost::INTERP_STEP * lg(page_size as f64))
}

/// Predicted mean lookup cost of the FAST-style tree.
fn cost_fast(n: usize) -> f64 {
    let per_level = (lg(n as f64) - cost::FAST_RESIDENT).max(cost::FAST_LEVEL_MIN);
    lg(n as f64) * per_level
}

/// Pick the backend for a shard from its probe-RMI statistics.
///
/// Pure and deterministic: the choice is a function of `stats` alone,
/// with ties broken by fixed candidate order (RMI, then B-Trees by
/// ascending page size, then interpolation, then FAST).
///
/// # Examples
/// ```
/// use li_core::rmi::{Rmi, RmiConfig, TopModel};
/// use li_serve::select::{choose, BackendChoice};
///
/// // A near-linear shard trains to tiny error: the RMI keeps the job.
/// let keys: Vec<u64> = (0..50_000u64).map(|i| i * 7 + 3).collect();
/// let rmi = Rmi::build(keys, &RmiConfig::two_stage(TopModel::Linear, 256));
/// assert_eq!(choose(rmi.stats()), BackendChoice::Rmi);
/// ```
pub fn choose(stats: &RmiStats) -> BackendChoice {
    let mut candidates = vec![(cost_rmi(stats), BackendChoice::Rmi)];
    candidates.extend(tree_candidates(stats.keys));
    cheapest(&candidates)
}

/// The duplicate-safe slice of the grid: B-Trees by ascending page
/// size, interpolation, FAST. Shared between [`choose`] and the
/// multiset path (which has no probe stats — the RMI input contract is
/// unique keys — so it grid-searches the trees over key count alone).
fn tree_candidates(n: usize) -> Vec<(f64, BackendChoice)> {
    let mut candidates = Vec::with_capacity(5);
    for page_size in [64usize, 128, 256] {
        candidates.push((cost_btree(n, page_size), BackendChoice::BTree { page_size }));
    }
    candidates.push((cost_interp(256), BackendChoice::Interp { page_size: 256 }));
    candidates.push((cost_fast(n), BackendChoice::Fast));
    candidates
}

/// Backend for a multiset shard of `n` keys: the cheapest
/// duplicate-safe tree. Pure in `n`, same tie-break rule as [`choose`].
pub fn choose_multiset(n: usize) -> BackendChoice {
    cheapest(&tree_candidates(n))
}

/// Min-by-cost with strict `<`: ties keep the earliest candidate, so
/// the decision is deterministic even across float-equal costs.
fn cheapest(candidates: &[(f64, BackendChoice)]) -> BackendChoice {
    let mut best = candidates[0];
    for c in &candidates[1..] {
        if c.0 < best.0 {
            best = *c;
        }
    }
    best.1
}

/// Probe + choose + (for the write tier) materialize: train a probe RMI
/// over `keys` through the shared retune loop, run [`choose`] on its
/// stats, and — when the winner is not the RMI — rebuild as an
/// all-B-Tree-leaf *hybrid* RMI at the chosen page size, which is the
/// closest the write tier's delta base can get to a real tree backend.
///
/// Returns the index to install, the config that rebuilt it (persisted
/// with snapshots so reloads keep the decision), and the raw choice for
/// event recording. The backend family is recoverable from the config:
/// `hybrid_threshold.is_some()` ⇔ tree family.
pub(crate) fn train_selected(
    keys: &KeyStore,
    leaf_fraction: f64,
    retune: &RetunePolicy,
) -> (Rmi, RmiConfig, BackendChoice) {
    let (rmi, cfg) = retune_rmi(keys, &TopModel::Linear, leaf_fraction, Some(retune));
    let choice = choose(rmi.stats());
    if choice == BackendChoice::Rmi {
        return (rmi, cfg, choice);
    }
    // Tree family: every leaf becomes a B-Tree page (threshold 0), with
    // the leaf count sized so each leaf spans a handful of pages.
    let page = choice.hybrid_page();
    let leaves = (keys.len() / (page * 4)).clamp(1, keys.len().max(1));
    let mut hcfg = RmiConfig::two_stage(TopModel::Linear, leaves).with_hybrid(0);
    hcfg.hybrid_page_size = page;
    let hybrid = Rmi::build(keys.clone(), &hcfg);
    (hybrid, hcfg, choice)
}

/// Adaptive shard builder: probes each shard with a retuned RMI, grid-
/// searches the backend candidates over the probe's statistics, and
/// builds the winner. Multiset shards (adjacent duplicate keys) skip
/// the probe — the RMI contract is unique keys — and go straight to the
/// duplicate-exact FAST-style tree.
///
/// With [`AutoShardBuilder::with_metrics`], every decision increments
/// `li_backend_selections_total` and records a
/// [`BACKEND_SELECT`](crate::obs::events::BACKEND_SELECT) event
/// carrying the chosen family code and the shard's key count.
#[derive(Clone, Default)]
pub struct AutoShardBuilder {
    leaf_fraction: f64,
    retune: RetunePolicy,
    metrics: Option<Arc<ServeMetrics>>,
}

impl AutoShardBuilder {
    /// Selector with the workspace's default probe density (1 leaf per
    /// ~200 keys) and retune policy.
    pub fn new() -> Self {
        Self {
            leaf_fraction: 1.0 / 200.0,
            retune: RetunePolicy::default(),
            metrics: None,
        }
    }

    /// Record every selection into `metrics` (counter + event).
    pub fn with_metrics(mut self, metrics: Arc<ServeMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Decide (without building) which backend this shard gets.
    pub fn decide(&self, shard: &KeyStore) -> BackendChoice {
        if shard.windows(2).any(|w| w[0] == w[1]) {
            return choose_multiset(shard.len());
        }
        let (rmi, _) = retune_rmi(
            shard,
            &TopModel::Linear,
            self.leaf_fraction,
            Some(&self.retune),
        );
        choose(rmi.stats())
    }

    fn record(&self, choice: BackendChoice, keys: usize) {
        if let Some(m) = &self.metrics {
            m.backend_selections.incr();
            m.event(events::BACKEND_SELECT, choice.code(), keys as u64);
        }
    }
}

impl std::fmt::Debug for AutoShardBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutoShardBuilder")
            .field("leaf_fraction", &self.leaf_fraction)
            .field("observed", &self.metrics.is_some())
            .finish()
    }
}

impl ShardBuilder for AutoShardBuilder {
    fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex> {
        if shard.windows(2).any(|w| w[0] == w[1]) {
            // Multiset shard: the RMI probe contract (sorted unique)
            // rules the whole learned family out; grid-search the
            // duplicate-safe trees instead.
            let choice = choose_multiset(shard.len());
            self.record(choice, shard.len());
            return match choice {
                BackendChoice::BTree { page_size } => Box::new(BTreeIndex::new(shard, page_size)),
                BackendChoice::Interp { page_size } => {
                    Box::new(InterpBTree::with_page_size(shard, page_size))
                }
                _ => Box::new(FastTree::new(shard)),
            };
        }
        let (rmi, _) = retune_rmi(
            &shard,
            &TopModel::Linear,
            self.leaf_fraction,
            Some(&self.retune),
        );
        let choice = choose(rmi.stats());
        self.record(choice, shard.len());
        match choice {
            // Reuse the probe: it already owns the shard slice.
            BackendChoice::Rmi => Box::new(rmi),
            BackendChoice::BTree { page_size } => Box::new(BTreeIndex::new(shard, page_size)),
            BackendChoice::Interp { page_size } => {
                Box::new(InterpBTree::with_page_size(shard, page_size))
            }
            BackendChoice::Fast => Box::new(FastTree::new(shard)),
        }
    }

    fn name(&self) -> String {
        "auto".to_string()
    }
}

/// Named backend handle: the one-stop way to say how a [`ShardedIndex`]
/// (or, via `ShardedWritableConfig::backend`, a `ShardedWritable`)
/// should build its shards.
///
/// [`Backend::Auto`] is the adaptive selector; the rest pin one backend
/// at its reference tuning. `Backend` implements [`ShardBuilder`], so
/// it drops into every construction path that takes one:
///
/// ```
/// use li_serve::{Backend, RangeIndex, ShardedIndex};
///
/// let keys: Vec<u64> = (0..40_000u64).map(|i| i * 3).collect();
/// let idx = ShardedIndex::build(keys, 4, &Backend::Auto);
/// assert_eq!(idx.lower_bound(3 * 777), 777);
/// ```
///
/// [`ShardedIndex`]: crate::ShardedIndex
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Per-shard adaptive selection (probe → grid-search → build).
    Auto,
    /// Retuned two-stage RMI on every shard.
    #[default]
    Rmi,
    /// Cache-optimized B-Tree, page size 128, on every shard.
    BTree,
    /// Interpolation B-Tree, page size 256, on every shard.
    Interp,
    /// FAST-style branch-free tree on every shard.
    Fast,
}

impl Backend {
    /// All pinnable (non-auto) backends, in grid order.
    pub const HAND_PICKED: [Backend; 4] =
        [Backend::Rmi, Backend::BTree, Backend::Interp, Backend::Fast];

    /// Stable tag byte for snapshot encoding
    /// (0 = auto, 1 = rmi, 2 = btree, 3 = interp, 4 = fast).
    pub fn tag(&self) -> u8 {
        match self {
            Backend::Auto => 0,
            Backend::Rmi => 1,
            Backend::BTree => 2,
            Backend::Interp => 3,
            Backend::Fast => 4,
        }
    }

    /// Inverse of [`Backend::tag`].
    pub fn from_tag(tag: u8) -> Option<Backend> {
        match tag {
            0 => Some(Backend::Auto),
            1 => Some(Backend::Rmi),
            2 => Some(Backend::BTree),
            3 => Some(Backend::Interp),
            4 => Some(Backend::Fast),
            _ => None,
        }
    }
}

impl ShardBuilder for Backend {
    fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex> {
        match self {
            Backend::Auto => AutoShardBuilder::new().build(shard),
            Backend::Rmi => crate::builder::RmiShardBuilder::new()
                .with_retune(RetunePolicy::default())
                .build(shard),
            Backend::BTree => crate::builder::BTreeShardBuilder::new(128).build(shard),
            Backend::Interp => Box::new(InterpBTree::with_page_size(shard, 256)),
            Backend::Fast => crate::builder::FastShardBuilder.build(shard),
        }
    }

    fn name(&self) -> String {
        match self {
            Backend::Auto => "auto".to_string(),
            Backend::Rmi => "rmi".to_string(),
            Backend::BTree => "btree(page=128)".to_string(),
            Backend::Interp => "interp-btree(page=256)".to_string(),
            Backend::Fast => "fast".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use li_data::Gauntlet;

    fn probe_stats(keys: &[u64]) -> RmiStats {
        let store = KeyStore::new(keys.to_vec());
        let (rmi, _) = retune_rmi(
            &store,
            &TopModel::Linear,
            1.0 / 200.0,
            Some(&RetunePolicy::default()),
        );
        rmi.stats().clone()
    }

    #[test]
    fn near_linear_shard_selects_rmi() {
        // Arithmetic keys: the probe trains to ~zero error, and no tree
        // can beat a two-multiply exact predictor.
        let keys: Vec<u64> = (0..50_000u64).map(|i| i * 13 + 5).collect();
        assert_eq!(choose(&probe_stats(&keys)), BackendChoice::Rmi);
    }

    #[test]
    fn stepped_shard_selects_a_tree_family() {
        // The stepped gauntlet: arithmetic runs split by 2^35 jumps.
        // At this size the leaf models straddle jumps and mispredict by
        // dozens of positions, so the grid search must abandon the RMI
        // for one of the tree backends.
        let keys = Gauntlet::Stepped.generate(20_000, 7);
        let choice = choose(&probe_stats(&keys));
        assert_ne!(choice, BackendChoice::Rmi, "stepped must not keep the RMI");
    }

    #[test]
    fn clustered_osm_like_shard_selects_a_btree() {
        // A big clustered shard: too much model error to keep the RMI,
        // too many keys for the cache-resident FAST tree — the paged
        // B-Tree is the only backend left standing.
        let keys = Gauntlet::OsmLike.generate(50_000, 7);
        let choice = choose(&probe_stats(&keys));
        assert!(
            matches!(choice, BackendChoice::BTree { .. }),
            "osm-like@50k should pick a B-Tree, got {choice:?}"
        );
    }

    #[test]
    fn selection_is_a_pure_function_of_stats() {
        // Same stats in, same choice out — byte-identical decisions,
        // no ambient state. Probe twice and cross-check both orders.
        for g in Gauntlet::ALL {
            if g.is_multiset() {
                continue;
            }
            let keys = g.generate(10_000, 3);
            let (a, b) = (probe_stats(&keys), probe_stats(&keys));
            assert_eq!(choose(&a), choose(&b), "{}", g.name());
            assert_eq!(choose(&a), choose(&a), "{}", g.name());
        }
    }

    #[test]
    fn duplicate_shards_route_to_fast_without_probing() {
        let keys = Gauntlet::HeavyDup.generate(5_000, 9);
        let builder = AutoShardBuilder::new();
        assert_eq!(
            builder.decide(&KeyStore::new(keys.clone())),
            BackendChoice::Fast
        );
        let before = li_core::train_count();
        let idx = builder.build(KeyStore::new(keys));
        // No probe RMI was trained for the multiset shard.
        assert_eq!(li_core::train_count(), before);
        assert_eq!(idx.name(), "fast");
    }

    #[test]
    fn auto_builder_records_selection_events() {
        let metrics = Arc::new(ServeMetrics::new());
        let builder = AutoShardBuilder::new().with_metrics(Arc::clone(&metrics));
        let keys: Vec<u64> = (0..50_000u64).map(|i| i * 3).collect();
        let _ = builder.build(KeyStore::new(keys));
        let snap = metrics.registry().snapshot();
        assert_eq!(snap.counter("li_backend_selections_total"), Some(1));
        let events: Vec<_> = snap
            .ring("li_events")
            .unwrap()
            .iter()
            .filter(|e| e.kind == events::BACKEND_SELECT)
            .collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].a, BackendChoice::Rmi.code());
        assert_eq!(events[0].b, 50_000);
    }

    #[test]
    fn backend_tags_round_trip() {
        for b in [
            Backend::Auto,
            Backend::Rmi,
            Backend::BTree,
            Backend::Interp,
            Backend::Fast,
        ] {
            assert_eq!(Backend::from_tag(b.tag()), Some(b));
        }
        assert_eq!(Backend::from_tag(5), None);
    }

    #[test]
    fn every_backend_builds_a_working_shard() {
        let store = KeyStore::new((0..4_000u64).map(|i| i * 2).collect());
        for b in [
            Backend::Auto,
            Backend::Rmi,
            Backend::BTree,
            Backend::Interp,
            Backend::Fast,
        ] {
            let idx = b.build(store.slice(100..3_900));
            assert!(idx.key_store().ptr_eq(&store), "{}", b.name());
            assert_eq!(idx.lower_bound(store[100]), 0, "{}", b.name());
            assert_eq!(idx.lower_bound(store[2000]), 1900, "{}", b.name());
        }
    }

    #[test]
    fn write_tier_materialization_tracks_the_choice() {
        // Smooth keys: selection keeps the RMI, config stays plain.
        let smooth = KeyStore::new((0..20_000u64).map(|i| i * 5).collect());
        let (_, cfg, choice) = train_selected(&smooth, 1.0 / 200.0, &RetunePolicy::default());
        assert_eq!(choice, BackendChoice::Rmi);
        assert!(cfg.hybrid_threshold.is_none());

        // Stepped keys: selection goes tree-family, which the write
        // tier materializes as an all-B-Tree-leaf hybrid.
        let stepped = KeyStore::new(Gauntlet::Stepped.generate(20_000, 7));
        let (rmi, cfg, choice) = train_selected(&stepped, 1.0 / 200.0, &RetunePolicy::default());
        assert_ne!(choice, BackendChoice::Rmi);
        assert_eq!(cfg.hybrid_threshold, Some(0));
        assert!(
            rmi.stats().btree_leaves > 0,
            "hybrid must hold B-Tree leaves"
        );
    }
}
