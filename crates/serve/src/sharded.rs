//! The sharded serving index: N zero-copy shard slices, one router.
//!
//! Range-partitions one shared [`KeyStore`] into contiguous shards
//! (`KeyStore::slice` — no key is ever copied), builds a pluggable
//! [`ShardBuilder`] backend per shard, and routes every query through a
//! learned-with-binary-fallback [`ShardRouter`]. `ShardedIndex` itself
//! implements [`RangeIndex`], so every harness, property suite and
//! figure in the workspace runs against it unchanged — sharding is an
//! implementation detail behind the same trait.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::builder::ShardBuilder;
use crate::obs::ServeMetrics;
use crate::router::ShardRouter;
use li_index::partition::{boundaries, even_offsets};
use li_index::{KeyStore, Prediction, RangeIndex};
use li_obs::MetricsSnapshot;

/// A range-partitioned index over one shared key array.
///
/// * **Zero-copy**: every shard's backend is built over a
///   `KeyStore::slice` of the same allocation (`ptr_eq` holds across
///   all shards).
/// * **Routing**: a query goes to the shard whose position range
///   contains its global lower bound (learned router, O(1)-verified;
///   see `li_index::partition::route_binary` for the proof, duplicates
///   included).
/// * **Batched**: `lower_bound_batch` buckets the queries per shard and
///   hands each shard its bucket in one call, so phase-split backends
///   keep their memory-level parallelism within each shard.
/// * **Parallel**: [`ShardedIndex::lower_bound_batch_parallel`] fans
///   contiguous sub-batches out across scoped threads.
pub struct ShardedIndex {
    store: KeyStore,
    /// `shard_count + 1` split positions into `store`.
    offsets: Vec<usize>,
    router: ShardRouter,
    shards: Vec<Box<dyn RangeIndex>>,
    backend_name: String,
    /// Opt-in observability: unattached, every lookup pays exactly one
    /// atomic load on this cell; attached, lookups are counted (one
    /// relaxed add) and latency-sampled (see `crate::obs`).
    obs: OnceLock<Arc<ServeMetrics>>,
}

impl ShardedIndex {
    /// Partition `data` into `shards` balanced range shards (clamped to
    /// at least 1 and at most one shard per key) and build a backend
    /// per shard with `builder`.
    pub fn build(data: impl Into<KeyStore>, shards: usize, builder: &dyn ShardBuilder) -> Self {
        let store: KeyStore = data.into();
        let n = shards.clamp(1, store.len().max(1));
        let offsets = even_offsets(store.len(), n);
        let shard_indexes: Vec<Box<dyn RangeIndex>> = offsets
            .windows(2)
            .map(|w| builder.build(store.slice(w[0]..w[1])))
            .collect();
        let router = ShardRouter::fit(boundaries(&store, &offsets));
        Self {
            store,
            offsets,
            router,
            shards: shard_indexes,
            backend_name: builder.name(),
            obs: OnceLock::new(),
        }
    }

    /// Attach an observability bundle: from here on, lookups are
    /// counted and latency-sampled into it. A no-op if a bundle is
    /// already attached (the first one wins).
    pub fn attach_metrics(&self, metrics: Arc<ServeMetrics>) {
        let _ = self.obs.set(metrics);
    }

    /// The attached observability bundle, if any.
    pub fn metrics_handle(&self) -> Option<&Arc<ServeMetrics>> {
        self.obs.get()
    }

    /// A consistent point-in-time snapshot of the attached metrics
    /// (`None` when no bundle is attached).
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.obs.get().map(|m| m.registry().snapshot())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The backend serving shard `i`.
    pub fn shard(&self, i: usize) -> &dyn RangeIndex {
        self.shards[i].as_ref()
    }

    /// The position where shard `i` starts in the full array.
    pub fn shard_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// The router (exposed so callers can check whether the learned
    /// fast path is active).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Everything the persistence layer needs to describe this index:
    /// the shared store, the shard offsets, the backend name, and the
    /// shard backends themselves (for parameter extraction).
    pub(crate) fn persist_parts(&self) -> (&KeyStore, &[usize], &str, &[Box<dyn RangeIndex>]) {
        (&self.store, &self.offsets, &self.backend_name, &self.shards)
    }

    /// Reassemble from loaded parts — the persistence load path, where
    /// the shard backends were rebuilt from saved parameters over
    /// slices of `store` with no retraining. The router is refit from
    /// the boundary keys (cheap: one tiny least-squares over
    /// `shard_count - 1` keys, not a model retrain).
    ///
    /// # Panics
    /// If `offsets` is not a valid partition of `store` into
    /// `shards.len()` pieces.
    pub(crate) fn from_loaded(
        store: KeyStore,
        offsets: Vec<usize>,
        shards: Vec<Box<dyn RangeIndex>>,
        backend_name: String,
    ) -> Self {
        assert_eq!(offsets.len(), shards.len() + 1, "torn shard partition");
        assert_eq!(offsets.first(), Some(&0), "partition must start at 0");
        assert_eq!(
            offsets.last(),
            Some(&store.len()),
            "partition must cover the store"
        );
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "unsorted offsets");
        let router = ShardRouter::fit(boundaries(&store, &offsets));
        Self {
            store,
            offsets,
            router,
            shards,
            backend_name,
            obs: OnceLock::new(),
        }
    }

    /// Batched lookup fanned out across `threads` scoped threads, each
    /// running the bucketed [`RangeIndex::lower_bound_batch`] on a
    /// contiguous sub-batch. Results are identical to the sequential
    /// path; only the wall-clock differs. `threads` is clamped to
    /// `1..=queries.len()`.
    ///
    /// # Panics
    /// If `queries.len() != out.len()`.
    pub fn lower_bound_batch_parallel(&self, queries: &[u64], out: &mut [usize], threads: usize) {
        assert_eq!(
            queries.len(),
            out.len(),
            "lower_bound_batch_parallel: queries and out must have equal length"
        );
        if queries.is_empty() {
            return;
        }
        if let Some(m) = self.obs.get() {
            m.parallel_batches.incr();
        }
        let threads = threads.clamp(1, queries.len());
        if threads == 1 {
            self.lower_bound_batch(queries, out);
            return;
        }
        let chunk = queries.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (qs, os) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || self.lower_bound_batch(qs, os));
            }
        });
    }
}

impl RangeIndex for ShardedIndex {
    fn key_store(&self) -> &KeyStore {
        &self.store
    }

    fn predict(&self, key: u64) -> Prediction {
        let s = self.router.route(key);
        let p = self.shards[s].predict(key);
        let o = self.offsets[s];
        Prediction {
            pos: o + p.pos,
            lo: o + p.lo,
            hi: o + p.hi,
        }
    }

    fn lower_bound(&self, key: u64) -> usize {
        // Counting and the 1-in-N sampling decision share one relaxed
        // striped add (`incr_sampled`); only sampled calls pay clocks.
        if let Some(m) = self.obs.get() {
            if m.lookups.incr_sampled(crate::obs::LOOKUP_SAMPLE) {
                let t = Instant::now();
                let s = self.router.route(key);
                let r = self.offsets[s] + self.shards[s].lower_bound(key);
                m.lookup_ns.record_since(t);
                return r;
            }
        }
        let s = self.router.route(key);
        self.offsets[s] + self.shards[s].lower_bound(key)
    }

    fn lower_bound_batch(&self, queries: &[u64], out: &mut [usize]) {
        assert_eq!(
            queries.len(),
            out.len(),
            "lower_bound_batch: queries and out must have equal length"
        );
        // One timer pair amortized over the whole batch: count every
        // query, record the per-query average latency.
        let timed = self.obs.get().filter(|_| !queries.is_empty()).map(|m| {
            m.batch_lookups.add(queries.len() as u64);
            (m, Instant::now())
        });
        self.lower_bound_batch_inner(queries, out);
        if let Some((m, t)) = timed {
            let per_query = t.elapsed().as_nanos() as u64 / queries.len() as u64;
            m.batch_lookup_ns.record(per_query);
        }
    }

    fn size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.size_bytes()).sum::<usize>()
            + self.router.size_bytes()
            + self.offsets.len() * std::mem::size_of::<usize>()
    }

    fn name(&self) -> String {
        format!(
            "sharded(n={}, backend={}, router={})",
            self.shards.len(),
            self.backend_name,
            if self.router.is_learned() {
                "learned"
            } else {
                "binary"
            }
        )
    }
}

impl ShardedIndex {
    /// The uninstrumented bucketed batch plan.
    fn lower_bound_batch_inner(&self, queries: &[u64], out: &mut [usize]) {
        if self.shards.len() == 1 {
            self.shards[0].lower_bound_batch(queries, out);
            return;
        }
        // Bucket queries per shard so each backend sees its whole
        // sub-batch at once (keeping phase-split plans effective), then
        // scatter the offset-translated answers back.
        let n = self.shards.len();
        let mut bucket_queries: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut bucket_slots: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (slot, &q) in queries.iter().enumerate() {
            let s = self.router.route(q);
            bucket_queries[s].push(q);
            bucket_slots[s].push(slot);
        }
        let mut local = Vec::new();
        for s in 0..n {
            if bucket_queries[s].is_empty() {
                continue;
            }
            local.clear();
            local.resize(bucket_queries[s].len(), 0);
            self.shards[s].lower_bound_batch(&bucket_queries[s], &mut local);
            let o = self.offsets[s];
            for (&slot, &r) in bucket_slots[s].iter().zip(&local) {
                out[slot] = o + r;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BTreeShardBuilder, FastShardBuilder, RmiShardBuilder};

    fn oracle(data: &[u64], q: u64) -> usize {
        data.partition_point(|&k| k < q)
    }

    fn probes(data: &[u64]) -> Vec<u64> {
        let mut qs = vec![0u64, 1, u64::MAX - 1, u64::MAX];
        for &k in data.iter().step_by(7) {
            qs.extend_from_slice(&[k.saturating_sub(1), k, k.saturating_add(1)]);
        }
        qs
    }

    #[test]
    fn sharded_matches_oracle_across_shard_counts() {
        let data: Vec<u64> = (0..5000u64).map(|i| i * 3 + (i % 2)).collect();
        for shards in [1usize, 2, 5, 16, 64] {
            let idx = ShardedIndex::build(data.clone(), shards, &RmiShardBuilder::new());
            assert_eq!(idx.shard_count(), shards);
            for q in probes(&data) {
                assert_eq!(
                    idx.lower_bound(q),
                    oracle(&data, q),
                    "shards={shards} q={q}"
                );
            }
        }
    }

    #[test]
    fn all_shards_share_one_allocation() {
        let store = KeyStore::new((0..1000u64).collect());
        let idx = ShardedIndex::build(store.clone(), 8, &BTreeShardBuilder::new(32));
        assert!(idx.key_store().ptr_eq(&store));
        for s in 0..idx.shard_count() {
            assert!(idx.shard(s).key_store().ptr_eq(&store), "shard {s}");
        }
        // 1 caller handle + 1 in the ShardedIndex + >= 1 per shard.
        assert!(store.strong_count() >= idx.shard_count() + 2);
    }

    #[test]
    fn batch_and_parallel_match_scalar() {
        let data: Vec<u64> = (0..3000u64).map(|i| i * 5).collect();
        let idx = ShardedIndex::build(data.clone(), 7, &RmiShardBuilder::new());
        let queries = probes(&data);
        let mut batch = vec![0usize; queries.len()];
        idx.lower_bound_batch(&queries, &mut batch);
        for threads in [1usize, 2, 4, 8] {
            let mut par = vec![usize::MAX; queries.len()];
            idx.lower_bound_batch_parallel(&queries, &mut par, threads);
            assert_eq!(par, batch, "threads={threads}");
        }
        for (&q, &got) in queries.iter().zip(&batch) {
            assert_eq!(got, oracle(&data, q), "q={q}");
        }
    }

    #[test]
    fn empty_and_tiny_stores_work() {
        for shards in [1usize, 3, 7] {
            let empty = ShardedIndex::build(Vec::<u64>::new(), shards, &FastShardBuilder);
            assert_eq!(empty.shard_count(), 1, "clamped to one shard");
            assert_eq!(empty.lower_bound(42), 0);
            empty.lower_bound_batch(&[], &mut []);

            let single = ShardedIndex::build(vec![9u64], shards, &FastShardBuilder);
            assert_eq!(single.shard_count(), 1);
            assert_eq!(single.lower_bound(8), 0);
            assert_eq!(single.lower_bound(9), 0);
            assert_eq!(single.lower_bound(10), 1);
        }
        // Two keys, clamp 7 -> 2 shards.
        let two = ShardedIndex::build(vec![3u64, 8], 7, &FastShardBuilder);
        assert_eq!(two.shard_count(), 2);
        assert_eq!(two.lower_bound(5), 1);
    }

    #[test]
    fn duplicate_runs_spanning_shards_find_first_occurrence() {
        // 30 copies of each value: runs straddle every shard boundary.
        let data: Vec<u64> = (0..300u64).map(|i| i / 30).collect();
        for shards in [1usize, 3, 7] {
            let idx = ShardedIndex::build(data.clone(), shards, &FastShardBuilder);
            for q in probes(&data) {
                assert_eq!(
                    idx.lower_bound(q),
                    oracle(&data, q),
                    "shards={shards} q={q}"
                );
                assert_eq!(idx.upper_bound(q), data.partition_point(|&k| k <= q));
            }
        }
    }

    #[test]
    fn predict_region_brackets_the_answer() {
        let data: Vec<u64> = (0..2000u64).map(|i| i * 2).collect();
        let idx = ShardedIndex::build(data.clone(), 5, &BTreeShardBuilder::new(64));
        for q in probes(&data) {
            let p = idx.predict(q);
            let lb = idx.lower_bound(q);
            assert!(p.lo <= lb && lb <= p.hi, "q={q} p={p:?} lb={lb}");
        }
    }

    #[test]
    fn name_and_size_reflect_the_configuration() {
        let idx = ShardedIndex::build(
            (0..10_000u64).collect::<Vec<_>>(),
            4,
            &RmiShardBuilder::new(),
        );
        assert!(idx.name().starts_with("sharded(n=4, backend=rmi"));
        assert!(idx.size_bytes() > 0);
        // Size excludes the key data (RangeIndex contract).
        assert!(idx.size_bytes() < 10_000 * 8);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn parallel_length_mismatch_panics() {
        let idx = ShardedIndex::build(vec![1u64, 2, 3], 2, &FastShardBuilder);
        let mut out = vec![0usize; 2];
        idx.lower_bound_batch_parallel(&[1, 2, 3], &mut out, 2);
    }
}
