//! The serving tier's observability surface: one [`ServeMetrics`]
//! bundle of typed `li-obs` handles shared by every subsystem.
//!
//! A [`ShardedWritable`](crate::ShardedWritable) owns one
//! `Arc<ServeMetrics>` and hands clones to its shards, its WAL and its
//! background worker, so every counter, histogram and trace event for
//! one structure lands in **one registry** — and
//! [`ShardedWritable::metrics`](crate::ShardedWritable::metrics) /
//! `render_text` read it all back as a consistent point-in-time
//! snapshot. A standalone [`ShardedIndex`](crate::ShardedIndex) can
//! attach a bundle with `attach_metrics` (read-path instrumentation is
//! opt-in there; unattached lookups pay one atomic load).
//!
//! ## Cost model
//!
//! * Every operation is **counted**: one relaxed striped add.
//! * Structural events (split, merge, fold, seal, WAL truncation,
//!   recovery) are rare; they always record a counter bump and a ring
//!   event regardless of the `observe` config flag — the registry is
//!   the single source of truth for the structure's own accessors
//!   (`splits()`, `compactions()`, …).
//! * Per-op **latency** is *sampled* (1-in-[`INSERT_SAMPLE`] inserts,
//!   1-in-[`LOOKUP_SAMPLE`] scalar lookups): two `Instant::now` calls
//!   cost ~50 ns, which would dominate a ~100–300 ns hot path if paid
//!   on every call. The sampling decision is *fused* into the op
//!   counter ([`li_obs::Counter::incr_sampled`]) so counting + the
//!   1-in-N choice cost one thread-local stripe lookup and one relaxed
//!   `fetch_add` total. Batched paths time the whole batch and record
//!   the per-key average — one timer pair amortized over the batch.

use std::sync::Arc;

use li_obs::{Counter, Gauge, GaugeSet, Histogram, MetricsRegistry, TraceRing};

/// Latency sampling period for scalar inserts (power of two).
pub const INSERT_SAMPLE: u64 = 8;
/// Latency sampling period for scalar lookups (power of two).
pub const LOOKUP_SAMPLE: u64 = 32;
/// Structural-event ring capacity.
pub const EVENT_RING_CAPACITY: usize = 256;

/// Structural event kinds recorded into the trace ring.
///
/// Payload conventions (`a`, `b`) are listed per constant; readers get
/// the resolved name via [`event_name`].
pub mod events {
    /// A hot shard split: `a` = new topology generation, `b` = shard
    /// count after the split.
    pub const SHARD_SPLIT: u32 = 1;
    /// Two cold neighbor shards merged: `a` = new generation, `b` =
    /// shard count after the merge.
    pub const SHARD_MERGE: u32 = 2;
    /// A full run stack folded into the learned base: `a` = runs
    /// consumed, `b` = base length after the fold.
    pub const COMPACT_FOLD: u32 = 3;
    /// A write buffer sealed into an immutable sorted run: `a` = run
    /// length, `b` = run-stack depth after the seal.
    pub const BUFFER_SEAL: u32 = 4;
    /// A write buffer merged into the base (legacy non-tiered mode):
    /// `a` = keys merged, `b` = shard length after.
    pub const BUFFER_MERGE: u32 = 5;
    /// The WAL was truncated at a snapshot publish: `a` = LSN
    /// watermark, `b` = log bytes discarded.
    pub const WAL_TRUNCATE: u32 = 6;
    /// The WAL latched an append/sync failure: `a` = next LSN at the
    /// time of failure.
    pub const WAL_LATCH: u32 = 7;
    /// A snapshot was saved: `a` = keys persisted, `b` = WAL LSN
    /// watermark stamped into the header.
    pub const SNAPSHOT_SAVE: u32 = 8;
    /// A snapshot was loaded (zero retraining): `a` = keys loaded.
    pub const SNAPSHOT_LOAD: u32 = 9;
    /// Crash recovery replayed the durable WAL tail: `a` = records
    /// replayed, `b` = torn bytes truncated.
    pub const RECOVERY_REPLAY: u32 = 10;
    /// The backend selector decided a shard's backend at (re)build:
    /// `a` = chosen family code ([`crate::select::BackendChoice::code`]),
    /// `b` = keys in the shard.
    pub const BACKEND_SELECT: u32 = 11;
}

/// Resolve an event kind code to its catalog name.
pub fn event_name(kind: u32) -> &'static str {
    match kind {
        events::SHARD_SPLIT => "shard_split",
        events::SHARD_MERGE => "shard_merge",
        events::COMPACT_FOLD => "compact_fold",
        events::BUFFER_SEAL => "buffer_seal",
        events::BUFFER_MERGE => "buffer_merge",
        events::WAL_TRUNCATE => "wal_truncate",
        events::WAL_LATCH => "wal_latch",
        events::SNAPSHOT_SAVE => "snapshot_save",
        events::SNAPSHOT_LOAD => "snapshot_load",
        events::RECOVERY_REPLAY => "recovery_replay",
        events::BACKEND_SELECT => "backend_select",
        _ => "unknown",
    }
}

/// Typed handles into one structure's [`MetricsRegistry`].
///
/// Field docs give the registered metric name; everything is reachable
/// generically through [`ServeMetrics::registry`] too.
pub struct ServeMetrics {
    registry: MetricsRegistry,

    // ---- op counters (every op, hot path: one relaxed add) ----
    /// `li_lookups_total`: scalar lookups served.
    pub lookups: Arc<Counter>,
    /// `li_batch_lookup_queries_total`: queries served by batch paths.
    pub batch_lookups: Arc<Counter>,
    /// `li_parallel_batches_total`: parallel batch-lookup fan-outs.
    pub parallel_batches: Arc<Counter>,
    /// `li_inserts_total`: scalar inserts acknowledged.
    pub inserts: Arc<Counter>,
    /// `li_batch_insert_keys_total`: keys accepted via `insert_batch`.
    pub batch_inserts: Arc<Counter>,
    /// `li_durable_inserts_total`: inserts that went through the WAL.
    pub durable_inserts: Arc<Counter>,

    // ---- structural counters (single source of truth) ----
    /// `li_shard_splits_total`: topology splits published.
    pub splits: Arc<Counter>,
    /// `li_shard_merges_total`: topology merges published.
    pub shard_merges: Arc<Counter>,
    /// `li_compactions_total`: run-stack folds into the base.
    pub compactions: Arc<Counter>,
    /// `li_runs_compacted_total`: sealed runs consumed by folds.
    pub runs_compacted: Arc<Counter>,
    /// `li_buffer_seals_total`: buffers sealed into runs.
    pub buffer_seals: Arc<Counter>,
    /// `li_buffer_merges_total`: legacy-mode buffer merges.
    pub buffer_merges: Arc<Counter>,
    /// `li_wal_appends_total`: WAL records appended.
    pub wal_appends: Arc<Counter>,
    /// `li_wal_syncs_total`: WAL fsyncs issued.
    pub wal_syncs: Arc<Counter>,
    /// `li_wal_truncates_total`: snapshot-publish log truncations.
    pub wal_truncates: Arc<Counter>,
    /// `li_wal_replayed_total`: records replayed by crash recovery.
    pub wal_replayed: Arc<Counter>,
    /// `li_backend_selections_total`: backend-selector decisions made
    /// at shard (re)build (Auto mode only).
    pub backend_selections: Arc<Counter>,
    /// `li_backend_switches_total`: re-selections that changed a
    /// shard's backend family relative to the shard it was rebuilt
    /// from (Auto mode only).
    pub backend_switches: Arc<Counter>,

    // ---- gauges ----
    /// `li_shard_count`: live shard count.
    pub shard_count: Arc<Gauge>,
    /// `li_generation`: topology generation (splits + merges).
    pub generation: Arc<Gauge>,
    /// `li_shard_len{shard="i"}`: per-shard key depth.
    pub shard_len: Arc<GaugeSet>,
    /// `li_shard_runs{shard="i"}`: per-shard sealed-run count.
    pub shard_runs: Arc<GaugeSet>,
    /// `li_shard_pending{shard="i"}`: per-shard write-buffer fill.
    pub shard_pending: Arc<GaugeSet>,

    // ---- latency histograms (ns) ----
    /// `li_lookup_ns`: sampled scalar lookup latency.
    pub lookup_ns: Arc<Histogram>,
    /// `li_batch_lookup_ns`: per-query average over each batch lookup.
    pub batch_lookup_ns: Arc<Histogram>,
    /// `li_insert_ns`: sampled scalar insert latency.
    pub insert_ns: Arc<Histogram>,
    /// `li_batch_insert_ns`: per-key average over each insert batch.
    pub batch_insert_ns: Arc<Histogram>,
    /// `li_merge_ns`: buffer-merge (retrain + swap) duration.
    pub merge_ns: Arc<Histogram>,
    /// `li_compact_train_ns`: off-lock fold retrain duration.
    pub compact_train_ns: Arc<Histogram>,
    /// `li_compact_install_ns`: under-write-lock fold install duration.
    pub compact_install_ns: Arc<Histogram>,
    /// `li_pass_observe_ns`: worker pass — under-read-lock observe.
    pub pass_observe_ns: Arc<Histogram>,
    /// `li_pass_plan_ns`: worker pass — split/merge planning.
    pub pass_plan_ns: Arc<Histogram>,
    /// `li_pass_retrain_ns`: worker pass — off-lock shard rebuild.
    pub pass_retrain_ns: Arc<Histogram>,
    /// `li_pass_publish_ns`: worker pass — write-lock topology publish.
    pub pass_publish_ns: Arc<Histogram>,
    /// `li_pass_drain_ns`: worker pass — straggler drain inside the
    /// publish critical section.
    pub pass_drain_ns: Arc<Histogram>,
    /// `li_wal_append_ns`: WAL record append (write + bookkeeping).
    pub wal_append_ns: Arc<Histogram>,
    /// `li_wal_sync_ns`: WAL fsync duration.
    pub wal_sync_ns: Arc<Histogram>,

    // ---- events ----
    /// `li_events`: the structural-event trace ring.
    pub events: Arc<TraceRing>,
}

impl ServeMetrics {
    /// A fresh bundle with every metric registered under its
    /// `li_`-prefixed name.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        let c = |n: &str| registry.counter(n);
        let h = |n: &str| registry.histogram(n);
        ServeMetrics {
            lookups: c("li_lookups_total"),
            batch_lookups: c("li_batch_lookup_queries_total"),
            parallel_batches: c("li_parallel_batches_total"),
            inserts: c("li_inserts_total"),
            batch_inserts: c("li_batch_insert_keys_total"),
            durable_inserts: c("li_durable_inserts_total"),
            splits: c("li_shard_splits_total"),
            shard_merges: c("li_shard_merges_total"),
            compactions: c("li_compactions_total"),
            runs_compacted: c("li_runs_compacted_total"),
            buffer_seals: c("li_buffer_seals_total"),
            buffer_merges: c("li_buffer_merges_total"),
            wal_appends: c("li_wal_appends_total"),
            wal_syncs: c("li_wal_syncs_total"),
            wal_truncates: c("li_wal_truncates_total"),
            wal_replayed: c("li_wal_replayed_total"),
            backend_selections: c("li_backend_selections_total"),
            backend_switches: c("li_backend_switches_total"),
            shard_count: registry.gauge("li_shard_count"),
            generation: registry.gauge("li_generation"),
            shard_len: registry.gauge_set("li_shard_len", "shard"),
            shard_runs: registry.gauge_set("li_shard_runs", "shard"),
            shard_pending: registry.gauge_set("li_shard_pending", "shard"),
            lookup_ns: h("li_lookup_ns"),
            batch_lookup_ns: h("li_batch_lookup_ns"),
            insert_ns: h("li_insert_ns"),
            batch_insert_ns: h("li_batch_insert_ns"),
            merge_ns: h("li_merge_ns"),
            compact_train_ns: h("li_compact_train_ns"),
            compact_install_ns: h("li_compact_install_ns"),
            pass_observe_ns: h("li_pass_observe_ns"),
            pass_plan_ns: h("li_pass_plan_ns"),
            pass_retrain_ns: h("li_pass_retrain_ns"),
            pass_publish_ns: h("li_pass_publish_ns"),
            pass_drain_ns: h("li_pass_drain_ns"),
            wal_append_ns: h("li_wal_append_ns"),
            wal_sync_ns: h("li_wal_sync_ns"),
            events: registry.ring("li_events", EVENT_RING_CAPACITY, event_name),
            registry,
        }
    }

    /// The underlying registry (for snapshots and generic access).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Record a structural event (counterpart counters are the
    /// caller's responsibility — they are the source of truth).
    #[inline]
    pub fn event(&self, kind: u32, a: u64, b: u64) {
        self.events.record(kind, a, b);
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ServeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeMetrics")
            .field("registry", &self.registry)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_registers_under_one_registry() {
        let m = ServeMetrics::new();
        m.inserts.add(3);
        m.lookup_ns.record(120);
        m.event(events::SHARD_SPLIT, 1, 5);
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter("li_inserts_total"), Some(3));
        assert_eq!(snap.histogram("li_lookup_ns").unwrap().count(), 1);
        let tail = snap.ring("li_events").unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].name, "shard_split");
    }

    #[test]
    fn every_kind_has_a_catalog_name() {
        for k in 1..=11u32 {
            assert_ne!(event_name(k), "unknown", "kind {k}");
        }
        assert_eq!(event_name(0), "unknown");
    }
}
