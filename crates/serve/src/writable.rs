//! The write path: a shard that accepts concurrent inserts while
//! serving snapshot-consistent reads.
//!
//! [`WritableShard`] wraps a [`DeltaIndex`] (Appendix D.1's
//! buffer-and-retrain insert path) behind an `RwLock`. Writers take the
//! write lock per insert; readers take the read lock only long enough
//! to clone a [`DeltaSnapshot`] — an `Arc` bump for the trained base
//! plus a copy of the (threshold-bounded) pending buffer — and then run
//! as many queries as they like against it with **no** lock held.
//!
//! Merge+retrain inside the `DeltaIndex` is a whole-base swap (the base
//! RMI lives behind an `Arc`), so a snapshot taken before a merge keeps
//! serving the exact pre-merge state: reads are never torn across a
//! retrain, which is what the concurrent stress suite asserts.
//!
//! In **tiered** mode ([`WritableShard::tiered`]) the shard also carries
//! a stack of immutable sorted runs between the buffer and the base, and
//! [`WritableShard::compact`] folds them into the base with the retrain
//! running **off-lock**: writers are only excluded for the final
//! pointer-swap publish, never for the `Rmi::build` — the same
//! observe / rebuild-off-lock / publish discipline the background
//! rebalancer uses for topology changes.

use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

use li_core::delta::{DeltaIndex, DeltaSnapshot};
use li_core::rmi::{Rmi, RmiConfig, RmiStats};
use li_index::KeyStore;

use crate::builder::RetunePolicy;
use crate::obs::{events, ServeMetrics};
use crate::select::{train_selected, BackendChoice};

/// A concurrently writable shard: `DeltaIndex` behind an `RwLock`,
/// reads served from lock-free snapshots.
#[derive(Debug)]
pub struct WritableShard {
    inner: RwLock<DeltaIndex>,
    /// The owning structure's observability bundle, attached once at
    /// build/load time (standalone shards stay unattached — they pay
    /// one `OnceLock` load per write and record nothing). Seals,
    /// buffer merges and compaction phases report here.
    obs: OnceLock<Arc<ServeMetrics>>,
}

impl WritableShard {
    /// Build over initial sorted unique `data`; buffer up to
    /// `merge_threshold` inserts between retrains.
    pub fn new(data: impl Into<KeyStore>, config: RmiConfig, merge_threshold: usize) -> Self {
        Self {
            inner: RwLock::new(DeltaIndex::new(data, config, merge_threshold)),
            obs: OnceLock::new(),
        }
    }

    /// Wrap an already-trained base RMI (no retraining); `config` is
    /// what future merge+retrain cycles rebuild with.
    pub fn from_trained(base: Rmi, config: RmiConfig, merge_threshold: usize) -> Self {
        Self {
            inner: RwLock::new(DeltaIndex::from_trained(base, config, merge_threshold)),
            obs: OnceLock::new(),
        }
    }

    /// Build a **tiered** shard: a full buffer is sealed into an
    /// immutable sorted run (O(buffer), no base retrain) instead of
    /// merged, and once `max_runs` runs have stacked up
    /// [`WritableShard::needs_compaction`] turns true so the owner can
    /// fold them with one [`WritableShard::compact`] call.
    /// `max_runs == 0` is the classic untiered shard.
    ///
    /// # Examples
    /// ```
    /// use li_core::rmi::RmiConfig;
    /// use li_serve::WritableShard;
    ///
    /// let shard = WritableShard::tiered(vec![100u64, 200], RmiConfig::default(), 4, 2);
    /// for k in 0..8u64 {
    ///     shard.insert(k); // two seals, zero base retrains
    /// }
    /// assert_eq!(shard.run_count(), 2);
    /// assert!(shard.needs_compaction());
    /// assert_eq!(shard.compact(), 2); // one retrain folds both runs
    /// assert_eq!(shard.len(), 10);
    /// ```
    pub fn tiered(
        data: impl Into<KeyStore>,
        config: RmiConfig,
        merge_threshold: usize,
        max_runs: usize,
    ) -> Self {
        Self {
            inner: RwLock::new(
                DeltaIndex::new(data, config, merge_threshold).with_tiering(max_runs),
            ),
            obs: OnceLock::new(),
        }
    }

    /// Insert a key, returning whether it was newly inserted (`false`
    /// for duplicates, which are no-ops). May trigger a merge + retrain,
    /// which swaps the shard's base wholesale; outstanding snapshots are
    /// unaffected.
    pub fn insert(&self, key: u64) -> bool {
        self.write_lock().insert(key)
    }

    /// Insert a whole batch under **one** write-lock acquisition,
    /// returning one newly-inserted flag per key in input order (see
    /// [`DeltaIndex::insert_batch`](li_core::delta::DeltaIndex::insert_batch)
    /// for the flag semantics). One lock handoff and at most one
    /// merge+retrain for the whole batch, instead of one of each per
    /// key.
    ///
    /// # Examples
    /// ```
    /// use li_core::rmi::RmiConfig;
    /// use li_serve::WritableShard;
    ///
    /// let shard = WritableShard::new(vec![10u64, 20], RmiConfig::default(), 64);
    /// let flags = shard.insert_batch(&[15, 20, 15]);
    /// assert_eq!(flags, vec![true, false, false]);
    /// assert_eq!(shard.len(), 3);
    /// ```
    pub fn insert_batch(&self, keys: &[u64]) -> Vec<bool> {
        self.write_lock().insert_batch(keys)
    }

    /// Attach the owning structure's observability bundle. First caller
    /// wins; later calls are no-ops (a shard never changes owners).
    pub(crate) fn attach_obs(&self, obs: Arc<ServeMetrics>) {
        let _ = self.obs.set(obs);
    }

    /// Force a full collapse + retrain now (sealed runs and the buffer
    /// both fold into the base).
    pub fn merge(&self) {
        let mut guard = self.write_lock();
        // Forced merges always arm the watch's timer: there is no
        // buffer-fullness precondition to infer it from.
        let watch = self.obs.get().map(|obs| TierWatch::armed(obs, &guard));
        guard.merge();
        if let Some(watch) = watch {
            watch.finish(&guard);
        }
    }

    /// Fold every sealed run into the base with one retrain, training
    /// **off-lock**: the run stack and base are captured under a brief
    /// read lock, `Rmi::build` runs with no lock held (writers keep
    /// inserting, even sealing new runs), and the result is published
    /// under the write lock only if the captured tiers are still
    /// current — otherwise nothing is installed and the caller retries
    /// later, exactly like the background rebalancer's `Raced` outcome.
    /// Returns the number of runs folded (0 = nothing to do or raced).
    pub fn compact(&self) -> usize {
        let (cut, cfg) = {
            let guard = self.read_lock();
            if guard.run_count() == 0 {
                return 0;
            }
            (guard.snapshot(), guard.config().clone())
        };
        // Compaction is cold (one retrain per K sealed runs), so both
        // phases are timed unconditionally when a bundle is attached:
        // the off-lock retrain vs. the under-write-lock install is
        // exactly the split the histograms exist to show.
        let obs = self.obs.get();
        let t_train = Instant::now();
        let Some(rebuilt) = cut.train_compacted(&cfg) else {
            return 0;
        };
        if let Some(obs) = obs {
            obs.compact_train_ns.record_since(t_train);
        }
        let t_install = Instant::now();
        let folded = self
            .write_lock()
            .install_compacted(&cut, rebuilt)
            .unwrap_or(0);
        if let Some(obs) = obs {
            obs.compact_install_ns.record_since(t_install);
        }
        folded
    }

    /// [`WritableShard::compact`] with backend **re-selection**: before
    /// training the compacted base, re-run the adaptive grid search
    /// (`crate::select`) over the keys the fold will produce, and
    /// install the winner's configuration alongside the rebuilt base —
    /// so a shard that drifted hard-to-learn since its last build
    /// silently becomes an all-B-Tree-leaf hybrid, and one that
    /// smoothed out becomes a plain RMI again. Same off-lock discipline
    /// and race rules as [`WritableShard::compact`].
    ///
    /// Returns `(runs folded, selection)`; `selection` is `None` when
    /// nothing was folded (empty stack or raced), otherwise the choice
    /// plus whether it *switched* the shard's backend family.
    pub(crate) fn compact_selected(
        &self,
        leaf_fraction: f64,
        retune: &RetunePolicy,
    ) -> (usize, Option<(BackendChoice, bool)>) {
        let (cut, was_hybrid) = {
            let guard = self.read_lock();
            if guard.run_count() == 0 {
                return (0, None);
            }
            (guard.snapshot(), guard.config().hybrid_threshold.is_some())
        };
        let obs = self.obs.get();
        let t_train = Instant::now();
        let keys = KeyStore::new(cut.merged_keys());
        let (rebuilt, cfg, choice) = train_selected(&keys, leaf_fraction, retune);
        if let Some(obs) = obs {
            obs.compact_train_ns.record_since(t_train);
        }
        let t_install = Instant::now();
        let folded = self
            .write_lock()
            .install_compacted_with(&cut, rebuilt, cfg)
            .unwrap_or(0);
        if let Some(obs) = obs {
            obs.compact_install_ns.record_since(t_install);
        }
        if folded == 0 {
            return (0, None);
        }
        let switched = was_hybrid != (choice != BackendChoice::Rmi);
        (folded, Some((choice, switched)))
    }

    /// Whether the trained base is currently an all-B-Tree-leaf hybrid
    /// (the write tier's "tree family") rather than a plain RMI — i.e.
    /// what the adaptive selector last decided for this shard.
    pub fn is_hybrid(&self) -> bool {
        self.read_lock().config().hybrid_threshold.is_some()
    }

    /// Whether the run stack has reached its tiering bound (always
    /// `false` for untiered shards).
    pub fn needs_compaction(&self) -> bool {
        self.read_lock().needs_compaction()
    }

    /// Sealed runs currently stacked between the buffer and the base.
    pub fn run_count(&self) -> usize {
        self.read_lock().run_count()
    }

    /// How many buffers have been sealed into immutable runs.
    pub fn seals(&self) -> usize {
        self.read_lock().seals()
    }

    /// How many compactions (run stacks folded into the base) have run.
    pub fn compactions(&self) -> usize {
        self.read_lock().compactions()
    }

    /// Keys held in sealed runs (between the buffer and the base).
    pub fn sealed_keys(&self) -> usize {
        self.read_lock().sealed_keys()
    }

    /// A point-in-time view for lock-free reading. O(pending) — an
    /// `Arc` clone of the trained base plus a copy of the bounded
    /// buffer — so readers hold the read lock only momentarily.
    pub fn snapshot(&self) -> DeltaSnapshot {
        self.read_lock().snapshot()
    }

    /// Whether `key` currently exists (takes the read lock).
    pub fn contains(&self, key: u64) -> bool {
        self.read_lock().contains(key)
    }

    /// Total keys currently stored.
    pub fn len(&self) -> usize {
        self.read_lock().len()
    }

    /// Whether the shard holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many merge+retrain cycles have run.
    pub fn merges(&self) -> usize {
        self.read_lock().merges()
    }

    /// Keys waiting in the delta buffer.
    pub fn pending(&self) -> usize {
        self.read_lock().pending()
    }

    /// Error statistics of the currently trained base RMI (clone of the
    /// cached stats — the rebalancer's split-on-error signal).
    pub fn base_stats(&self) -> RmiStats {
        self.read_lock().base_stats().clone()
    }

    /// Export every key (base + buffer) as one sorted unique vector —
    /// the hand-off when this shard splits or merges with a sibling.
    pub fn export_keys(&self) -> Vec<u64> {
        self.read_lock().export_keys()
    }

    /// Split the merged keyset at `pivot`: `(keys < pivot, keys >=
    /// pivot)`, both sorted unique.
    pub fn split_keys(&self, pivot: u64) -> (Vec<u64>, Vec<u64>) {
        self.read_lock().split_keys(pivot)
    }

    /// Wrap a fully reconstructed [`DeltaIndex`] — the persistence
    /// layer's load path, where the base RMI was rebuilt from saved
    /// parameters and the delta buffer replayed, with no retraining.
    pub(crate) fn from_delta(delta: DeltaIndex) -> Self {
        Self {
            inner: RwLock::new(delta),
            obs: OnceLock::new(),
        }
    }

    /// Insert plus the post-insert observations the sharded write path
    /// needs, all under ONE write-lock acquisition (a separate `len()`
    /// call would pay a second lock handoff per insert).
    pub(crate) fn insert_observed(&self, key: u64) -> InsertObs {
        let mut guard = self.write_lock();
        let watch = self.obs.get().map(|obs| TierWatch::begin(obs, &guard, 1));
        let inserted = guard.insert(key);
        let out = InsertObs {
            inserted,
            len: guard.len(),
            needs_compaction: guard.needs_compaction(),
        };
        if let Some(watch) = watch {
            watch.finish(&guard);
        }
        out
    }

    /// Batched [`WritableShard::insert_observed`]: flags in input order
    /// plus the shard observations, one lock acquisition.
    pub(crate) fn insert_batch_observed(&self, keys: &[u64]) -> (Vec<bool>, InsertObs) {
        let mut guard = self.write_lock();
        let watch = self
            .obs
            .get()
            .map(|obs| TierWatch::begin(obs, &guard, keys.len()));
        let flags = guard.insert_batch(keys);
        let inserted = flags.iter().any(|&f| f);
        let out = InsertObs {
            inserted,
            len: guard.len(),
            needs_compaction: guard.needs_compaction(),
        };
        if let Some(watch) = watch {
            watch.finish(&guard);
        }
        (flags, out)
    }

    /// The base snapshot, retrain configuration and merge threshold,
    /// captured atomically under one read guard — everything the
    /// persistence layer needs to describe this shard at save time.
    pub(crate) fn persist_state(&self) -> (DeltaSnapshot, RmiConfig, usize) {
        let guard = self.read_lock();
        (
            guard.snapshot(),
            guard.config().clone(),
            guard.merge_threshold(),
        )
    }

    // Poison recovery: a panic in a previous lock holder marks the lock
    // poisoned, but the guarded `DeltaIndex` is still valid — every
    // `&mut` entry point leaves it consistent at all panic points
    // (`insert`/`insert_batch` mutate the buffer with single
    // completed-or-not `Vec` operations, and `merge` builds the new
    // base *before* touching any field — see `DeltaIndex::merge`). So a
    // panicking writer must not condemn every later reader and writer:
    // recover the guard with `into_inner` and keep serving.

    fn read_lock(&self) -> std::sync::RwLockReadGuard<'_, DeltaIndex> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_lock(&self) -> std::sync::RwLockWriteGuard<'_, DeltaIndex> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Captures a shard's tier counters under the write lock *before* a
/// write, so the seal or buffer merge the write may trigger can be
/// detected — and its duration attributed — *after* it, all within the
/// same critical section. Detection is by counter diff (the `DeltaIndex`
/// already counts its own seals and merges), so no tiering logic is
/// duplicated here.
struct TierWatch<'a> {
    obs: &'a Arc<ServeMetrics>,
    seals0: usize,
    merges0: usize,
    threshold: usize,
    /// Armed only when the buffer can actually fill during this write —
    /// the plain buffered-insert fast path never pays a clock read.
    started: Option<Instant>,
}

impl<'a> TierWatch<'a> {
    fn begin(obs: &'a Arc<ServeMetrics>, guard: &DeltaIndex, incoming: usize) -> Self {
        let threshold = guard.merge_threshold();
        let armed = guard.pending().saturating_add(incoming) >= threshold;
        Self {
            obs,
            seals0: guard.seals(),
            merges0: guard.merges(),
            threshold,
            started: armed.then(Instant::now),
        }
    }

    /// A watch whose timer is unconditionally running (forced merges).
    fn armed(obs: &'a Arc<ServeMetrics>, guard: &DeltaIndex) -> Self {
        Self {
            started: Some(Instant::now()),
            ..Self::begin(obs, guard, 0)
        }
    }

    fn finish(self, guard: &DeltaIndex) {
        let seals = guard.seals() - self.seals0;
        let merges = guard.merges() - self.merges0;
        if seals > 0 {
            self.obs.buffer_seals.add(seals as u64);
            // A run is sealed exactly when the buffer hits capacity, so
            // the run length is the threshold.
            self.obs.event(
                events::BUFFER_SEAL,
                self.threshold as u64,
                guard.run_count() as u64,
            );
        }
        if merges > 0 {
            self.obs.buffer_merges.add(merges as u64);
            if let Some(t) = self.started {
                self.obs.merge_ns.record_since(t);
            }
            self.obs.event(
                events::BUFFER_MERGE,
                self.threshold as u64,
                guard.len() as u64,
            );
        }
    }
}

/// What an insert observed about its shard, captured under the same
/// write lock as the insert itself.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InsertObs {
    /// Whether any key was newly inserted.
    pub inserted: bool,
    /// Shard length right after the insert.
    pub len: usize,
    /// Whether the run stack is at its tiering bound.
    pub needs_compaction: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use li_core::rmi::TopModel;

    fn cfg() -> RmiConfig {
        RmiConfig::two_stage(TopModel::Linear, 32)
    }

    #[test]
    fn shared_reference_inserts_and_reads() {
        let shard = WritableShard::new((0..100u64).map(|i| i * 2).collect::<Vec<_>>(), cfg(), 16);
        assert_eq!(shard.len(), 100);
        assert!(shard.insert(1));
        assert!(!shard.insert(1), "duplicate insert must report false");
        assert!(shard.contains(1));
        assert_eq!(shard.len(), 101);
    }

    #[test]
    fn stats_and_export_pass_through() {
        let shard = WritableShard::new((0..500u64).collect::<Vec<_>>(), cfg(), 8);
        assert!(shard.base_stats().max_abs_err <= 1, "linear base is tight");
        shard.insert(1000);
        let all = shard.export_keys();
        assert_eq!(all.len(), 501);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        let (left, right) = shard.split_keys(250);
        assert_eq!(left.len(), 250);
        assert_eq!(right.first(), Some(&250));
    }

    #[test]
    fn snapshots_survive_merges() {
        let shard = WritableShard::new(vec![10u64, 20, 30], cfg(), 4);
        shard.insert(15);
        let snap = shard.snapshot();
        assert_eq!(snap.len(), 4);
        // Push through a merge cycle.
        for k in [11u64, 12, 13, 14, 16, 17] {
            shard.insert(k);
        }
        assert!(shard.merges() >= 1);
        assert_eq!(snap.len(), 4, "snapshot must keep its pre-merge view");
        assert!(snap.contains(15) && !snap.contains(11));
        assert_eq!(shard.len(), 10);
    }

    #[test]
    fn writer_panic_does_not_take_down_readers() {
        let shard = WritableShard::new(vec![10u64, 20, 30], cfg(), 16);
        shard.insert(15);
        // A "writer" dies while holding the write lock — the classic
        // poisoning scenario. The DeltaIndex under the lock is
        // untouched mid-panic (see the poison-recovery note on
        // `read_lock`), so nothing was actually corrupted.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shard.inner.write().unwrap();
            panic!("writer dies mid-critical-section");
        }));
        assert!(result.is_err());
        assert!(shard.inner.is_poisoned(), "the lock really was poisoned");

        // Readers keep answering, writers keep writing.
        assert!(shard.contains(15));
        assert_eq!(shard.len(), 4);
        assert!(shard.insert(25));
        assert!(shard.contains(25));
        let snap = shard.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap.range_keys(0, u64::MAX), vec![10, 15, 20, 25, 30]);
    }

    #[test]
    fn concurrent_inserts_from_scoped_threads() {
        let shard = WritableShard::new((0..1000u64).map(|i| i * 10).collect::<Vec<_>>(), cfg(), 64);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let shard = &shard;
                scope.spawn(move || {
                    for i in 0..250u64 {
                        shard.insert((t * 250 + i) * 10 + 1);
                    }
                });
            }
        });
        assert_eq!(shard.len(), 2000);
        assert!(shard.merges() >= 2);
        for k in (0..1000u64).step_by(97) {
            assert!(shard.contains(k * 10 + 1));
        }
    }
}
