//! Persistence: save a trained serving tier to one snapshot file and
//! map it back in — a warm restart that never retrains.
//!
//! The paper's cost model (§3.1) splits a learned index into the *key
//! array* (big, dumb bytes) and the *model parameters* (a few
//! coefficients per stage). This module persists them in exactly that
//! shape:
//!
//! ```text
//!  ┌────────────────────────────┐ 0
//!  │ header (4096 B, page-      │   magic · version · kind ·
//!  │ aligned)                   │   n_keys · manifest_len ·
//!  │                            │   keys checksum · manifest checksum ·
//!  │                            │   snapshot LSN · header checksum
//!  ├────────────────────────────┤ 4096
//!  │ key payload                │   n_keys × u64, little-endian,
//!  │                            │   globally sorted
//!  ├────────────────────────────┤ 4096 + 8·n_keys
//!  │ manifest                   │   shard topology + per-shard model
//!  │                            │   coefficients + error envelopes
//!  └────────────────────────────┘   (+ delta buffers & sealed run
//!                                     stacks for the write path)
//! ```
//!
//! * **Save** serializes coefficients ([`li_core::RmiParams`]) — never
//!   pickled objects — and publishes atomically: write to a `.tmp`
//!   sibling, `fsync` the file, `rename`, then `fsync` the parent
//!   directory (without the directory sync, a crash *after* the rename
//!   could still resurrect the old snapshot — or leave none — because
//!   the rename itself only lived in the directory's page cache). A
//!   crash mid-save leaves the previous snapshot untouched; a reader
//!   never observes a torn file.
//! * **Load** maps the key payload (4096-byte alignment makes the u64
//!   region directly reinterpretable — [`KeyStore::from_mapped`] is
//!   zero-copy on 64-bit little-endian unix, decoded-copy elsewhere),
//!   verifies both checksums, rebuilds each shard's RMI from its saved
//!   coefficients with [`Rmi::from_params`], and — for the write path —
//!   replays the saved delta buffer — and, in tiered mode, the sealed
//!   run stack — into a fresh [`DeltaIndex`]. Run mini-models are
//!   refitted on load (O(run) linear fits, like the B-Tree leaves they
//!   are structure, not trained models); the base RMI is never refit:
//!   [`li_core::train_count`] is the witness.
//!
//! Format v3 covers every serving backend. Read-tier shards carry a
//! one-byte backend tag: RMI shards (linear tops; hybrid B-Tree
//! leaves included) store their coefficients, while the tree backends
//! (B-Tree, interpolation B-Tree, FAST) store at most a page size —
//! they are *structure*, rebuilt from the mapped key slices with zero
//! training — so the mixed topologies [`crate::Backend::Auto`]
//! produces round-trip backend-for-backend. Write-tier shards persist
//! their [`RmiConfig`] (which carries an Auto-selected hybrid
//! materialization) next to each delta base, plus per-shard sealed run
//! stacks for the tiered write path. Anything else — multivariate
//! tops, backends outside the four above — gets a
//! [`PersistError::Unsupported`], never a silently lossy file. v3
//! additionally stamps the **snapshot LSN** —
//! the last [`crate::wal::Wal`] record the snapshot covers — into the
//! header, so [`ShardedWritable::recover`] knows exactly which log
//! suffix is still live (see `crate::wal` and ARCHITECTURE.md
//! "Durability & recovery").

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use li_core::delta::DeltaIndex;
use li_core::rmi::{LeafModelParams, LeafParams, Rmi, RmiConfig, RmiParams, TopModel};
use li_core::SearchStrategy;
use li_index::{KeyStore, MappedFile, RangeIndex};

use li_btree::{BTreeIndex, FastTree, InterpBTree};

use crate::builder::RetunePolicy;
use crate::rebalance::RebalanceConfig;
use crate::select::Backend;
use crate::sharded::ShardedIndex;
use crate::sharded_writable::{ShardedWritable, ShardedWritableConfig};
use crate::writable::WritableShard;

/// Header size; also the key payload's file offset. One page, so the
/// mapped u64 region is alignment-compatible on every mainstream ABI.
pub const HEADER_LEN: usize = 4096;

/// File magic: ASCII tag + a non-ASCII byte + version-1 marker + CRLF
/// (catches text-mode mangling, like the PNG magic does).
const MAGIC: [u8; 8] = *b"LIDX\xF0\x01\r\n";

/// Format version written by this module. v2 added the
/// sharded-writable tiering fields (`max_runs` + per-shard sealed run
/// stacks); v3 added the snapshot LSN and a header checksum (bytes
/// 48..64) for WAL-coordinated recovery. Older versions are refused
/// with a clear [`PersistError`] rather than loaded with silently
/// dropped tiers or a silently ignored WAL tail.
const VERSION: u32 = 3;

/// `kind` field: a read-only [`ShardedIndex`] snapshot.
const KIND_SHARDED_INDEX: u32 = 1;
/// `kind` field: a [`ShardedWritable`] snapshot (bases + delta buffers).
const KIND_SHARDED_WRITABLE: u32 = 2;

/// Why a save or load failed.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file is not a valid snapshot (bad magic, truncated,
    /// checksum mismatch, inconsistent topology…).
    Format(String),
    /// The structure (or file) uses a feature format v3 cannot carry,
    /// e.g. a non-RMI shard backend or a multivariate/MLP top model.
    Unsupported(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist: io error: {e}"),
            PersistError::Format(m) => write!(f, "persist: malformed snapshot: {m}"),
            PersistError::Unsupported(m) => write!(f, "persist: unsupported: {m}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<crate::wal::WalError> for PersistError {
    fn from(e: crate::wal::WalError) -> Self {
        match e {
            crate::wal::WalError::Io(io) => PersistError::Io(io),
            other => PersistError::Format(other.to_string()),
        }
    }
}

fn format_err(msg: impl Into<String>) -> PersistError {
    PersistError::Format(msg.into())
}

/// FNV-1a (64-bit): tiny, dependency-free, and plenty to catch
/// truncation and bit-rot. This is an integrity check, not a MAC.
/// Shared with the WAL's record checksums.
use crate::wal::fnv1a;

// ---------------------------------------------------------------------
// Little-endian encode / decode
// ---------------------------------------------------------------------

/// Append-only little-endian encoder for the manifest.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian decoder: every read can fail with a
/// [`PersistError::Format`], so a truncated or corrupt manifest is an
/// error, never a panic.
struct Dec<'a> {
    bytes: &'a [u8],
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.bytes.len() < n {
            return Err(format_err("manifest truncated"));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.u64()?).map_err(|_| format_err("count overflows usize"))
    }
    /// A length-prefixed count that is about to size an allocation:
    /// reject anything the remaining manifest could not possibly hold
    /// (each counted item is at least `min_item_bytes`), so a corrupt
    /// length cannot trigger a huge `Vec::with_capacity`.
    fn count(&mut self, min_item_bytes: usize) -> Result<usize, PersistError> {
        let n = self.usize()?;
        if n.checked_mul(min_item_bytes.max(1))
            .is_none_or(|need| need > self.bytes.len())
        {
            return Err(format_err("count exceeds manifest size"));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, PersistError> {
        let n = self.count(1)?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| format_err("non-UTF-8 string"))
    }
    fn finish(self) -> Result<(), PersistError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(format_err("trailing bytes after manifest"))
        }
    }
}

// ---------------------------------------------------------------------
// Component encodings
// ---------------------------------------------------------------------

fn encode_rmi_params(enc: &mut Enc, p: &RmiParams) {
    enc.f64(p.top.0);
    enc.f64(p.top.1);
    enc.usize(p.mids.len());
    for stage in &p.mids {
        enc.usize(stage.len());
        for &(slope, intercept) in stage {
            enc.f64(slope);
            enc.f64(intercept);
        }
    }
    enc.usize(p.leaves.len());
    for leaf in &p.leaves {
        match leaf.model {
            LeafModelParams::Linear { slope, intercept } => {
                enc.u8(0);
                enc.f64(slope);
                enc.f64(intercept);
            }
            LeafModelParams::BTree {
                offset,
                len,
                page_size,
            } => {
                enc.u8(1);
                enc.u64(offset);
                enc.u64(len);
                enc.u64(page_size);
            }
        }
        enc.i64(leaf.min_err);
        enc.i64(leaf.max_err);
        enc.f64(leaf.std_err);
        enc.u64(leaf.n_keys);
    }
    enc.u8(p.search.to_tag());
}

fn decode_rmi_params(dec: &mut Dec<'_>) -> Result<RmiParams, PersistError> {
    let top = (dec.f64()?, dec.f64()?);
    let n_mids = dec.count(8)?;
    let mut mids = Vec::with_capacity(n_mids);
    for _ in 0..n_mids {
        let n = dec.count(16)?;
        let mut stage = Vec::with_capacity(n);
        for _ in 0..n {
            stage.push((dec.f64()?, dec.f64()?));
        }
        mids.push(stage);
    }
    let n_leaves = dec.count(1 + 16 + 8 + 8 + 8 + 8)?;
    let mut leaves = Vec::with_capacity(n_leaves);
    for _ in 0..n_leaves {
        let model = match dec.u8()? {
            0 => LeafModelParams::Linear {
                slope: dec.f64()?,
                intercept: dec.f64()?,
            },
            1 => LeafModelParams::BTree {
                offset: dec.u64()?,
                len: dec.u64()?,
                page_size: dec.u64()?,
            },
            t => return Err(format_err(format!("unknown leaf model tag {t}"))),
        };
        leaves.push(LeafParams {
            model,
            min_err: dec.i64()?,
            max_err: dec.i64()?,
            std_err: dec.f64()?,
            n_keys: dec.u64()?,
        });
    }
    let search = decode_search(dec)?;
    Ok(RmiParams {
        top,
        mids,
        leaves,
        search,
    })
}

fn decode_search(dec: &mut Dec<'_>) -> Result<SearchStrategy, PersistError> {
    let tag = dec.u8()?;
    SearchStrategy::from_tag(tag).ok_or_else(|| format_err(format!("unknown search tag {tag}")))
}

fn encode_rmi_config(enc: &mut Enc, cfg: &RmiConfig) -> Result<(), PersistError> {
    match cfg.top {
        TopModel::Linear => enc.u8(0),
        _ => {
            return Err(PersistError::Unsupported(
                "format v3 persists linear-top RMI configurations only".into(),
            ))
        }
    }
    enc.usize(cfg.stages.len());
    for &s in &cfg.stages {
        enc.usize(s);
    }
    enc.u8(cfg.search.to_tag());
    match cfg.hybrid_threshold {
        Some(t) => {
            enc.u8(1);
            enc.u32(t);
        }
        None => {
            enc.u8(0);
            enc.u32(0);
        }
    }
    enc.usize(cfg.hybrid_page_size);
    Ok(())
}

fn decode_rmi_config(dec: &mut Dec<'_>) -> Result<RmiConfig, PersistError> {
    let top = match dec.u8()? {
        0 => TopModel::Linear,
        t => return Err(format_err(format!("unknown top model tag {t}"))),
    };
    let n_stages = dec.count(8)?;
    let mut stages = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        stages.push(dec.usize()?);
    }
    let search = decode_search(dec)?;
    let has_hybrid = dec.u8()?;
    let threshold = dec.u32()?;
    let hybrid_threshold = match has_hybrid {
        0 => None,
        1 => Some(threshold),
        t => return Err(format_err(format!("bad hybrid flag {t}"))),
    };
    let hybrid_page_size = dec.usize()?;
    if stages.is_empty() || stages.contains(&0) {
        return Err(format_err("rmi config stages must be non-empty and > 0"));
    }
    if hybrid_page_size < 2 {
        return Err(format_err("hybrid_page_size must be >= 2"));
    }
    Ok(RmiConfig {
        top,
        stages,
        search,
        hybrid_threshold,
        hybrid_page_size,
    })
}

fn encode_sw_config(enc: &mut Enc, cfg: &ShardedWritableConfig) {
    enc.usize(cfg.merge_threshold);
    enc.f64(cfg.leaf_fraction);
    enc.f64(cfg.retune.max_mean_err);
    enc.u64(cfg.retune.max_abs_err);
    enc.usize(cfg.retune.max_rounds);
    enc.usize(cfg.check_interval);
    enc.usize(cfg.rebalance.max_shard_len);
    enc.usize(cfg.rebalance.merge_max_len);
    match cfg.rebalance.max_mean_err {
        Some(v) => {
            enc.u8(1);
            enc.f64(v);
        }
        None => {
            enc.u8(0);
            enc.f64(0.0);
        }
    }
    enc.usize(cfg.rebalance.max_shards);
    enc.usize(cfg.max_runs);
    enc.u8(cfg.backend.tag());
}

fn decode_sw_config(dec: &mut Dec<'_>) -> Result<ShardedWritableConfig, PersistError> {
    let merge_threshold = dec.usize()?;
    let leaf_fraction = dec.f64()?;
    let retune = RetunePolicy {
        max_mean_err: dec.f64()?,
        max_abs_err: dec.u64()?,
        max_rounds: dec.usize()?,
    };
    let check_interval = dec.usize()?;
    let max_shard_len = dec.usize()?;
    let merge_max_len = dec.usize()?;
    let has_mme = dec.u8()?;
    let mme = dec.f64()?;
    let max_mean_err = match has_mme {
        0 => None,
        1 => Some(mme),
        t => return Err(format_err(format!("bad max_mean_err flag {t}"))),
    };
    let max_shards = dec.usize()?;
    let max_runs = dec.usize()?;
    let backend_tag = dec.u8()?;
    let backend = Backend::from_tag(backend_tag)
        .ok_or_else(|| format_err(format!("bad backend tag {backend_tag}")))?;
    if matches!(backend, Backend::Interp | Backend::Fast) {
        return Err(format_err(format!(
            "backend tag {backend_tag} is not a write-tier backend"
        )));
    }
    let cfg = ShardedWritableConfig {
        merge_threshold,
        leaf_fraction,
        retune,
        check_interval,
        max_runs,
        backend,
        // Runtime-only knob, deliberately not persisted: a reloaded
        // structure observes by default like a fresh one.
        observe: true,
        rebalance: RebalanceConfig {
            max_shard_len,
            merge_max_len,
            max_mean_err,
            max_shards,
        },
    };
    // Mirror `ShardedWritableConfig::validate` as *errors*: a corrupt
    // file must be rejected, not allowed to panic deep in a
    // constructor.
    if cfg.merge_threshold == 0
        || !(cfg.leaf_fraction > 0.0 && cfg.leaf_fraction.is_finite())
        || !(cfg.retune.max_mean_err >= 0.0 && cfg.retune.max_mean_err.is_finite())
        || cfg.rebalance.max_shard_len < 2
        || cfg.rebalance.merge_max_len >= cfg.rebalance.max_shard_len
        || cfg.rebalance.max_shards < 1
        || cfg
            .rebalance
            .max_mean_err
            .is_some_and(|t| !(t >= 0.0 && t.is_finite()))
    {
        return Err(format_err("invalid sharded-writable configuration"));
    }
    Ok(cfg)
}

// ---------------------------------------------------------------------
// File-level write / read
// ---------------------------------------------------------------------

fn le_key_bytes(chunks: &[&[u64]]) -> Vec<u8> {
    let total: usize = chunks.iter().map(|c| c.len()).sum();
    let mut out = Vec::with_capacity(total * 8);
    for chunk in chunks {
        for &k in *chunk {
            out.extend_from_slice(&k.to_le_bytes());
        }
    }
    out
}

/// Write the snapshot atomically: `.tmp` sibling, `fsync` the file,
/// `rename`, `fsync` the parent directory. A reader (or a crash)
/// therefore sees either the complete previous file or the complete
/// new one — never a partial write. The directory sync is load-bearing:
/// `rename` only updates the directory's page cache, so without it a
/// power cut *after* a successful-looking publish could come back up
/// with the old snapshot (or, for a first save, none at all).
///
/// `lsn` is the snapshot LSN stamped into the header (bytes 48..56):
/// the last WAL record this snapshot covers, `0` for structures with
/// no WAL attached. Header bytes 0..56 are themselves checksummed
/// (bytes 56..64), so a flipped LSN byte is rejected, not replayed
/// around.
fn publish(
    path: &Path,
    kind: u32,
    lsn: u64,
    key_bytes: &[u8],
    manifest: &[u8],
) -> Result<(), PersistError> {
    debug_assert!(key_bytes.len().is_multiple_of(8));
    let mut header = vec![0u8; HEADER_LEN];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&kind.to_le_bytes());
    header[16..24].copy_from_slice(&((key_bytes.len() / 8) as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(manifest.len() as u64).to_le_bytes());
    header[32..40].copy_from_slice(&fnv1a(key_bytes).to_le_bytes());
    header[40..48].copy_from_slice(&fnv1a(manifest).to_le_bytes());
    header[48..56].copy_from_slice(&lsn.to_le_bytes());
    let header_sum = fnv1a(&header[0..56]);
    header[56..64].copy_from_slice(&header_sum.to_le_bytes());

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| -> Result<(), PersistError> {
        let mut f = File::create(&tmp)?;
        f.write_all(&header)?;
        f.write_all(key_bytes)?;
        f.write_all(manifest)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        crate::wal::sync_parent_dir(path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Open a snapshot, verify every header field and all three checksums
/// (header, key payload, manifest), and return the mapped region plus
/// the key count, the manifest's byte range within the region, and the
/// snapshot LSN.
fn open_verified(
    path: &Path,
    expect_kind: u32,
) -> Result<(Arc<MappedFile>, usize, std::ops::Range<usize>, u64), PersistError> {
    let region = Arc::new(MappedFile::open(path)?);
    let bytes = region.bytes();
    if bytes.len() < HEADER_LEN {
        return Err(format_err("file shorter than the header"));
    }
    if bytes[0..8] != MAGIC {
        return Err(format_err("bad magic (not a snapshot file)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(PersistError::Unsupported(format!(
            "snapshot format version {version} (this build reads {VERSION})"
        )));
    }
    let header_sum = u64::from_le_bytes(bytes[56..64].try_into().unwrap());
    if fnv1a(&bytes[0..56]) != header_sum {
        return Err(format_err("header checksum mismatch"));
    }
    let kind = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if kind != expect_kind {
        return Err(format_err(format!(
            "snapshot kind {kind}, expected {expect_kind}"
        )));
    }
    let n_keys = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let manifest_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let keys_sum = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
    let manifest_sum = u64::from_le_bytes(bytes[40..48].try_into().unwrap());
    let snapshot_lsn = u64::from_le_bytes(bytes[48..56].try_into().unwrap());
    let n_keys = usize::try_from(n_keys).map_err(|_| format_err("key count overflows usize"))?;
    let manifest_len =
        usize::try_from(manifest_len).map_err(|_| format_err("manifest length overflows usize"))?;
    let keys_end = n_keys
        .checked_mul(8)
        .and_then(|b| b.checked_add(HEADER_LEN))
        .ok_or_else(|| format_err("key payload size overflows"))?;
    let total = keys_end
        .checked_add(manifest_len)
        .ok_or_else(|| format_err("file size overflows"))?;
    if bytes.len() != total {
        return Err(format_err(format!(
            "file is {} bytes, header declares {total}",
            bytes.len()
        )));
    }
    if fnv1a(&bytes[HEADER_LEN..keys_end]) != keys_sum {
        return Err(format_err("key payload checksum mismatch"));
    }
    if fnv1a(&bytes[keys_end..total]) != manifest_sum {
        return Err(format_err("manifest checksum mismatch"));
    }
    Ok((region, n_keys, keys_end..total, snapshot_lsn))
}

/// Per-shard backend tags in a [`ShardedIndex`] snapshot manifest.
/// These match [`crate::BackendChoice::code`] for the families the
/// adaptive selector emits.
const SHARD_TAG_RMI: u8 = 0;
const SHARD_TAG_BTREE: u8 = 1;
const SHARD_TAG_INTERP: u8 = 2;
const SHARD_TAG_FAST: u8 = 3;

/// Decode and bounds-check a tree backend's page size: the constructors
/// assert `>= 2`, and a corrupt manifest must become a typed error, not
/// a panic (or an absurd allocation) inside them.
fn decode_page_size(dec: &mut Dec<'_>) -> Result<usize, PersistError> {
    let page_size = dec.usize()?;
    if !(2..=1 << 20).contains(&page_size) {
        return Err(format_err(format!("bad shard page size {page_size}")));
    }
    Ok(page_size)
}

fn check_sorted_unique(keys: &[u64], what: &str) -> Result<(), PersistError> {
    if keys.windows(2).all(|w| w[0] < w[1]) {
        Ok(())
    } else {
        Err(format_err(format!("{what} must be sorted and unique")))
    }
}

// ---------------------------------------------------------------------
// ShardedIndex save / load
// ---------------------------------------------------------------------

impl ShardedIndex {
    /// Save a snapshot of this index to `path` (atomic: tmp + file
    /// fsync + rename + directory fsync).
    ///
    /// Every shard records a one-byte backend tag followed by that
    /// backend's parameters: RMI shards (tag 0) store their model
    /// coefficients; B-Tree (1) and interpolation B-Tree (2) shards
    /// store only their page size and FAST shards (3) nothing at all —
    /// the tree backends are *structural* over the key payload, so the
    /// load path rebuilds them from the mapped key slices without
    /// training anything. Mixed topologies (what [`crate::Backend::Auto`]
    /// produces) round-trip backend-for-backend.
    ///
    /// RMI shards must have a linear top (the serving default), and
    /// every backend must be one of the four above; anything else
    /// returns [`PersistError::Unsupported`] — the format stores
    /// parameters, not arbitrary structures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let (store, offsets, backend_name, shards) = self.persist_parts();
        let mut enc = Enc::default();
        enc.str(backend_name);
        enc.usize(shards.len());
        for &o in offsets {
            enc.usize(o);
        }
        for (i, shard) in shards.iter().enumerate() {
            let any = shard.as_any().ok_or_else(|| {
                PersistError::Unsupported(format!(
                    "shard {i} backend ({}) does not expose its concrete type",
                    shard.name()
                ))
            })?;
            if let Some(rmi) = any.downcast_ref::<Rmi>() {
                enc.u8(SHARD_TAG_RMI);
                let params = rmi.to_params().ok_or_else(|| {
                    PersistError::Unsupported(format!(
                        "shard {i} uses a multivariate/MLP top; \
                         the format persists linear tops only"
                    ))
                })?;
                encode_rmi_params(&mut enc, &params);
            } else if let Some(btree) = any.downcast_ref::<BTreeIndex>() {
                enc.u8(SHARD_TAG_BTREE);
                enc.usize(btree.page_size());
            } else if let Some(interp) = any.downcast_ref::<InterpBTree>() {
                enc.u8(SHARD_TAG_INTERP);
                enc.usize(interp.page_size());
            } else if any.downcast_ref::<FastTree>().is_some() {
                enc.u8(SHARD_TAG_FAST);
            } else {
                return Err(PersistError::Unsupported(format!(
                    "shard {i} backend ({}) is not a persistable type \
                     (RMI, B-Tree, interpolation B-Tree or FAST)",
                    shard.name()
                )));
            }
        }
        publish(
            path.as_ref(),
            KIND_SHARDED_INDEX,
            0, // read-only tier: no WAL, LSN 0
            &le_key_bytes(&[store.as_slice()]),
            &enc.buf,
        )
    }

    /// Load a snapshot saved by [`ShardedIndex::save`]: map the key
    /// payload (zero-copy where the platform allows), rebuild each
    /// shard's RMI from its saved coefficients, refit the router over
    /// the boundary keys. **No retraining** — [`li_core::train_count`]
    /// does not move across a load.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let (region, n_keys, manifest, _lsn) = open_verified(path.as_ref(), KIND_SHARDED_INDEX)?;
        let store = KeyStore::from_mapped(&region, HEADER_LEN, n_keys)?;
        check_sorted_unique(store.as_slice(), "key payload")?;
        let mut dec = Dec::new(&region.bytes()[manifest]);
        let backend_name = dec.str()?;
        let shard_count = dec.count(8)?;
        if shard_count == 0 {
            return Err(format_err("snapshot declares zero shards"));
        }
        let mut offsets = Vec::with_capacity(shard_count + 1);
        for _ in 0..=shard_count {
            offsets.push(dec.usize()?);
        }
        if offsets.first() != Some(&0)
            || offsets.last() != Some(&n_keys)
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(format_err("shard offsets do not partition the keys"));
        }
        let mut shards: Vec<Box<dyn RangeIndex>> = Vec::with_capacity(shard_count);
        for w in offsets.windows(2) {
            let tag = dec.u8()?;
            let slice = store.slice(w[0]..w[1]);
            let shard: Box<dyn RangeIndex> = match tag {
                SHARD_TAG_RMI => {
                    let params = decode_rmi_params(&mut dec)?;
                    Box::new(Rmi::from_params(slice, &params).ok_or_else(|| {
                        format_err("shard parameters inconsistent with its key range")
                    })?)
                }
                SHARD_TAG_BTREE => Box::new(BTreeIndex::new(slice, decode_page_size(&mut dec)?)),
                SHARD_TAG_INTERP => Box::new(InterpBTree::with_page_size(
                    slice,
                    decode_page_size(&mut dec)?,
                )),
                SHARD_TAG_FAST => Box::new(FastTree::new(slice)),
                t => return Err(format_err(format!("bad shard backend tag {t}"))),
            };
            shards.push(shard);
        }
        dec.finish()?;
        Ok(ShardedIndex::from_loaded(
            store,
            offsets,
            shards,
            backend_name,
        ))
    }
}

// ---------------------------------------------------------------------
// ShardedWritable save / load
// ---------------------------------------------------------------------

impl ShardedWritable {
    /// Save a snapshot of this structure to `path` (atomic: tmp +
    /// file fsync + rename + directory fsync). The snapshot captures,
    /// per shard, the trained base's keys and coefficients **plus the
    /// pending delta buffer and sealed run stack**, all under one
    /// topology read guard — a consistent point-in-time cut even while
    /// concurrent inserts keep flowing afterwards.
    ///
    /// With a WAL attached ([`ShardedWritable::enable_wal`] /
    /// [`ShardedWritable::recover`]), the save additionally runs the
    /// checkpoint protocol: the WAL mutex is held across the cut and
    /// the publish (excluding concurrent durable writers, so the
    /// stamped LSN provably covers everything in the cut), the last
    /// assigned LSN is stamped into the header, and the log is
    /// truncated once the snapshot is durably published — the write
    /// history it logged is now fully covered by the snapshot.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let mut wal_guard = self.wal_slot().lock().unwrap_or_else(|e| e.into_inner());
        let lsn = wal_guard.as_ref().map_or(0, |w| w.last_lsn());
        self.save_snapshot(path.as_ref(), lsn)?;
        self.metrics_handle()
            .event(crate::obs::events::SNAPSHOT_SAVE, self.len() as u64, lsn);
        if let Some(wal) = wal_guard.as_mut() {
            wal.truncate_after_snapshot()?;
        }
        Ok(())
    }

    /// The cut-and-publish half of [`ShardedWritable::save`]: capture
    /// a consistent per-shard state under one topology read guard and
    /// publish it with `lsn` stamped in the header. The caller owns
    /// WAL coordination (holding the WAL mutex so no durable write can
    /// slip between the LSN capture and the cut).
    pub(crate) fn save_snapshot(&self, path: &Path, lsn: u64) -> Result<(), PersistError> {
        let (bounds, states) = self.persist_parts();
        let mut enc = Enc::default();
        encode_sw_config(&mut enc, self.config());
        enc.usize(states.len());
        for &b in &bounds {
            enc.u64(b);
        }
        let mut base_offset = 0usize;
        let mut chunks: Vec<&[u64]> = Vec::with_capacity(states.len());
        for (snap, cfg, threshold) in &states {
            let base = snap.base_index();
            let base_keys = base.key_store().as_slice();
            enc.usize(base_offset);
            enc.usize(base_keys.len());
            encode_rmi_config(&mut enc, cfg)?;
            enc.usize(*threshold);
            encode_rmi_params(
                &mut enc,
                &base.to_params().ok_or_else(|| {
                    PersistError::Unsupported(
                    "a shard base uses a multivariate/MLP top; format v3 persists linear tops only"
                        .into(),
                )
                })?,
            );
            let delta = snap.delta_keys();
            enc.usize(delta.len());
            for &k in delta {
                enc.u64(k);
            }
            // Sealed run stack, oldest first. Only the keys go in the
            // file: run mini-models are O(run) linear fits, refitted on
            // load exactly like hybrid B-Tree leaf structure.
            let runs = snap.runs();
            enc.usize(runs.len());
            for run in runs {
                enc.usize(run.len());
                for &k in run.as_slice() {
                    enc.u64(k);
                }
            }
            chunks.push(base_keys);
            base_offset += base_keys.len();
        }
        publish(
            path,
            KIND_SHARDED_WRITABLE,
            lsn,
            &le_key_bytes(&chunks),
            &enc.buf,
        )
    }

    /// Load a snapshot saved by [`ShardedWritable::save`]: map the key
    /// payload, rebuild every shard base from its saved coefficients
    /// ([`Rmi::from_params`] — no retraining), and **replay each saved
    /// delta buffer and sealed run stack** into a fresh `DeltaIndex`,
    /// so pending inserts survive the restart without having been
    /// merged or compacted. Run mini-models are refitted in O(run) —
    /// [`li_core::train_count`] stays flat across a load.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::load_with_lsn(path.as_ref()).map(|(sw, _lsn)| sw)
    }

    /// [`ShardedWritable::load`] plus the snapshot LSN from the header
    /// — the recovery path needs it to know which WAL records the
    /// snapshot already covers.
    pub(crate) fn load_with_lsn(path: &Path) -> Result<(Self, u64), PersistError> {
        let (region, n_keys, manifest, lsn) = open_verified(path, KIND_SHARDED_WRITABLE)?;
        let mut dec = Dec::new(&region.bytes()[manifest]);
        let config = decode_sw_config(&mut dec)?;
        let shard_count = dec.count(8)?;
        if shard_count == 0 {
            return Err(format_err("snapshot declares zero shards"));
        }
        let mut bounds = Vec::with_capacity(shard_count - 1);
        for _ in 1..shard_count {
            bounds.push(dec.u64()?);
        }
        check_sorted_unique(&bounds, "ownership bounds")?;
        let mut shards = Vec::with_capacity(shard_count);
        let mut expected_offset = 0usize;
        for s in 0..shard_count {
            let base_offset = dec.usize()?;
            let base_len = dec.usize()?;
            if base_offset != expected_offset {
                return Err(format_err(format!("shard {s} base is not contiguous")));
            }
            expected_offset = base_offset
                .checked_add(base_len)
                .ok_or_else(|| format_err("base range overflows"))?;
            if expected_offset > n_keys {
                return Err(format_err(format!("shard {s} base exceeds the payload")));
            }
            let cfg = decode_rmi_config(&mut dec)?;
            let threshold = dec.usize()?;
            if threshold == 0 {
                return Err(format_err("merge threshold must be > 0"));
            }
            let params = decode_rmi_params(&mut dec)?;
            let n_delta = dec.count(8)?;
            if n_delta >= threshold {
                return Err(format_err(
                    "delta buffer at or above the merge threshold (impossible at save time)",
                ));
            }
            let mut delta = Vec::with_capacity(n_delta);
            for _ in 0..n_delta {
                delta.push(dec.u64()?);
            }
            check_sorted_unique(&delta, "a delta buffer")?;
            let n_runs = dec.count(16)?;
            if config.max_runs == 0 && n_runs > 0 {
                return Err(format_err(
                    "sealed runs present but the configuration disables tiering",
                ));
            }
            let mut runs = Vec::with_capacity(n_runs);
            for _ in 0..n_runs {
                let n = dec.count(8)?;
                if n == 0 {
                    return Err(format_err("a sealed run must be non-empty"));
                }
                let mut run = Vec::with_capacity(n);
                for _ in 0..n {
                    run.push(dec.u64()?);
                }
                check_sorted_unique(&run, "a sealed run")?;
                runs.push(run);
            }
            // Mutual disjointness of the upper tiers, then of the upper
            // tiers against the base: disjoint sorted-unique sets stay
            // strictly sorted when merged, so any overlap shows up as
            // an equal adjacent pair (runs are small — this is cheap).
            let mut upper: Vec<u64> = runs
                .iter()
                .flatten()
                .copied()
                .chain(delta.clone())
                .collect();
            upper.sort_unstable();
            if !upper.windows(2).all(|w| w[0] < w[1]) {
                return Err(format_err(
                    "sealed runs and delta buffer overlap each other",
                ));
            }
            let store = KeyStore::from_mapped(&region, HEADER_LEN + base_offset * 8, base_len)?;
            check_sorted_unique(store.as_slice(), "a shard base")?;
            let base = Rmi::from_params(store, &params)
                .ok_or_else(|| format_err("shard parameters inconsistent with its key range"))?;
            if upper.iter().any(|&k| base.lookup(k).is_some()) {
                return Err(format_err("sealed runs or delta buffer overlap the base"));
            }
            let di = DeltaIndex::with_tiers(base, cfg, threshold, config.max_runs, runs, delta);
            shards.push(Arc::new(WritableShard::from_delta(di)));
        }
        if expected_offset != n_keys {
            return Err(format_err("shard bases do not cover the key payload"));
        }
        dec.finish()?;
        Ok((ShardedWritable::from_loaded(bounds, shards, config), lsn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BTreeShardBuilder, RmiShardBuilder};
    use li_core::train_count;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("li-serve-persist-{}-{name}", std::process::id()))
    }

    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
        }
    }

    #[test]
    fn sharded_index_round_trips_without_retraining() {
        let path = tmp_path("si-roundtrip.lidx");
        let _guard = Cleanup(path.clone());
        let data: Vec<u64> = (0..5000u64).map(|i| i * 7 + (i % 3)).collect();
        let idx = ShardedIndex::build(data.clone(), 6, &RmiShardBuilder::new());
        idx.save(&path).unwrap();

        let before = train_count();
        let loaded = ShardedIndex::load(&path).unwrap();
        assert_eq!(train_count(), before, "load must not train any model");

        assert_eq!(loaded.shard_count(), 6);
        assert_eq!(loaded.name(), idx.name());
        for q in data
            .iter()
            .flat_map(|&k| [k.saturating_sub(1), k, k + 1])
            .take(3000)
        {
            assert_eq!(loaded.lower_bound(q), idx.lower_bound(q), "q={q}");
        }
        // Zero-copy on the load side: every shard shares the mapped
        // region with the top-level store.
        let store = loaded.key_store();
        for s in 0..loaded.shard_count() {
            assert!(loaded.shard(s).key_store().ptr_eq(store), "shard {s}");
        }
    }

    #[test]
    fn sharded_writable_round_trips_with_pending_deltas() {
        let path = tmp_path("sw-roundtrip.lidx");
        let _guard = Cleanup(path.clone());
        let sw = ShardedWritable::new(
            (0..4000u64).map(|i| i * 5).collect::<Vec<_>>(),
            4,
            ShardedWritableConfig::default(),
        );
        // Leave some inserts *pending* (default threshold 1024, so
        // these stay in the buffers) — the snapshot must carry them.
        for k in 0..100u64 {
            sw.insert(k * 5 + 1);
        }
        sw.save(&path).unwrap();

        let before = train_count();
        let loaded = ShardedWritable::load(&path).unwrap();
        assert_eq!(train_count(), before, "load must not train any model");

        assert_eq!(loaded.len(), sw.len());
        let want = sw.range_keys(0, u64::MAX);
        assert_eq!(loaded.range_keys(0, u64::MAX), want);
        for &k in want.iter().step_by(37) {
            assert!(loaded.contains(k), "k={k}");
        }
        // The loaded structure is live: writes keep working.
        assert!(loaded.insert(3));
        assert!(!loaded.insert(3));
        assert_eq!(loaded.len(), sw.len() + 1);
    }

    #[test]
    fn corrupt_and_mismatched_files_are_rejected() {
        let path = tmp_path("corrupt.lidx");
        let _guard = Cleanup(path.clone());
        let idx = ShardedIndex::build((0..512u64).collect::<Vec<_>>(), 2, &RmiShardBuilder::new());
        idx.save(&path).unwrap();

        // Wrong kind.
        assert!(matches!(
            ShardedWritable::load(&path),
            Err(PersistError::Format(_))
        ));

        // Flip one key byte: the checksum must catch it.
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN + 100] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ShardedIndex::load(&path),
            Err(PersistError::Format(_))
        ));

        // Truncation.
        bytes.truncate(bytes.len() - 9);
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ShardedIndex::load(&path),
            Err(PersistError::Format(_))
        ));

        // Not a snapshot at all.
        fs::write(&path, b"hello world, definitely not an index").unwrap();
        assert!(matches!(
            ShardedIndex::load(&path),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn btree_backends_round_trip_structurally() {
        let path = tmp_path("btree-backend.lidx");
        let _guard = Cleanup(path.clone());
        let idx = ShardedIndex::build(
            (0..256u64).collect::<Vec<_>>(),
            2,
            &BTreeShardBuilder::new(32),
        );
        idx.save(&path).unwrap();
        let before = li_core::train_count();
        let loaded = ShardedIndex::load(&path).unwrap();
        // Tree shards are rebuilt structurally — nothing trains.
        assert_eq!(li_core::train_count(), before);
        for s in 0..2 {
            assert_eq!(loaded.shard(s).name(), idx.shard(s).name());
        }
        for k in 0..256u64 {
            assert_eq!(loaded.lower_bound(k), k as usize);
        }
    }

    /// A backend the format cannot carry (no `as_any` downcast hook):
    /// save must refuse with a typed error, never write a lossy file.
    struct OpaqueBackend(KeyStore);
    impl RangeIndex for OpaqueBackend {
        fn key_store(&self) -> &KeyStore {
            &self.0
        }
        fn predict(&self, _key: u64) -> li_index::Prediction {
            li_index::Prediction {
                pos: 0,
                lo: 0,
                hi: self.0.len(),
            }
        }
        fn lower_bound(&self, key: u64) -> usize {
            self.0.as_slice().partition_point(|&k| k < key)
        }
        fn size_bytes(&self) -> usize {
            0
        }
        fn name(&self) -> String {
            "opaque".into()
        }
    }
    struct OpaqueBuilder;
    impl crate::builder::ShardBuilder for OpaqueBuilder {
        fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex> {
            Box::new(OpaqueBackend(shard))
        }
        fn name(&self) -> String {
            "opaque".into()
        }
    }

    #[test]
    fn unknown_backends_are_unsupported_not_lossy() {
        let path = tmp_path("opaque-backend.lidx");
        let _guard = Cleanup(path.clone());
        let idx = ShardedIndex::build((0..256u64).collect::<Vec<_>>(), 2, &OpaqueBuilder);
        let err = idx.save(&path).unwrap_err();
        assert!(matches!(err, PersistError::Unsupported(_)), "{err}");
        assert!(!path.exists(), "a failed save must not leave a file");
    }

    /// RMI shards with hybrid B-Tree leaves enabled — exercises the
    /// `LeafModelParams::BTree` encoding.
    struct HybridBuilder;
    impl crate::builder::ShardBuilder for HybridBuilder {
        fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex> {
            let mut cfg = RmiConfig::two_stage(TopModel::Linear, (shard.len() / 64).max(1));
            cfg.hybrid_threshold = Some(2);
            cfg.hybrid_page_size = 16;
            Box::new(Rmi::build(shard, &cfg))
        }
        fn name(&self) -> String {
            "hybrid-test".into()
        }
    }

    #[test]
    fn hybrid_btree_leaves_survive_the_round_trip() {
        let path = tmp_path("hybrid.lidx");
        let _guard = Cleanup(path.clone());
        // A nastily clustered keyset + a tight hybrid threshold forces
        // some B-Tree leaves; their structure must be rebuilt from the
        // mapped keys on load.
        let mut data: Vec<u64> = Vec::new();
        for c in 0..64u64 {
            let base = c * c * c * 1000;
            data.extend((0..32u64).map(|i| base + i));
        }
        data.sort_unstable();
        data.dedup();
        let idx = ShardedIndex::build(data.clone(), 3, &HybridBuilder);
        idx.save(&path).unwrap();
        let loaded = ShardedIndex::load(&path).unwrap();
        for &k in data.iter().step_by(11) {
            assert_eq!(loaded.lower_bound(k), idx.lower_bound(k), "k={k}");
            assert_eq!(loaded.lower_bound(k + 1), idx.lower_bound(k + 1));
        }
    }
}
