//! The shard router: learned fast path, binary fallback, O(1) global
//! verification.
//!
//! Routing is itself a tiny lower-bound problem — "which shard's first
//! key is the last one `< q`?" — so the paper's thesis applies to it
//! recursively: fit a linear model over the boundary keys and use it as
//! a position hint, exactly like an RMI leaf, with `partition_point`
//! over a narrow verified window as the last mile. Because the correct
//! answer has an O(1) *global* certificate (`boundaries[r-1] < q <=
//! boundaries[r]`), the learned path can never return a wrong shard: a
//! failed certificate falls back to full binary search.

use li_index::partition::{route_binary, route_owner_binary};

/// Linear routing model over the boundary keys, with the validated
/// window half-width that makes its answers certifiable.
#[derive(Debug, Clone, Copy)]
struct LinearRoute {
    slope: f64,
    intercept: f64,
    /// Half-width of the search window around the prediction; fitted so
    /// the window provably brackets the true route at every boundary.
    err: usize,
}

impl LinearRoute {
    #[inline]
    fn predict(&self, key: u64) -> f64 {
        self.slope * key as f64 + self.intercept
    }
}

/// Routes a query key to the shard whose position range contains its
/// global lower bound.
///
/// Built from the shard boundary keys (first key of every shard except
/// shard 0, see `li_index::partition::boundaries`). Uses a learned
/// linear model when the boundaries support one (monotone, finite fit),
/// binary search otherwise — and *always* verifies the learned answer
/// with the O(1) certificate before trusting it.
///
/// Two routing rules share the machinery:
///
/// * [`ShardRouter::route`] — the *read* rule: the shard whose position
///   range contains `lower_bound(key)` (certificate
///   `boundaries[r-1] < key <= boundaries[r]`).
/// * [`ShardRouter::route_owner`] — the *ownership* rule of the
///   writable path: the unique shard whose half-open range
///   `[boundaries[s-1], boundaries[s])` contains the key (certificate
///   `boundaries[r-1] <= key < boundaries[r]`), so every key has
///   exactly one home to insert into.
///
/// # Examples
/// ```
/// use li_serve::ShardRouter;
///
/// // Three shards: [0, 100), [100, 200), [200, u64::MAX].
/// let router = ShardRouter::fit(vec![100, 200]);
/// assert_eq!(router.shards(), 3);
/// assert_eq!(router.route_owner(99), 0);
/// // A boundary key is OWNED by the shard it opens…
/// assert_eq!(router.route_owner(100), 1);
/// // …while the read rule sends lower_bound(100) to the shard that
/// // precedes it (the first stored key >= 100 could sit at the end of
/// // shard 0's position range).
/// assert_eq!(router.route(100), 0);
/// assert_eq!(router.route_owner(u64::MAX), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ShardRouter {
    boundaries: Vec<u64>,
    model: Option<LinearRoute>,
}

impl ShardRouter {
    /// Fit a router over the boundary keys (must be sorted; one entry
    /// per shard beyond the first). Refitting after a topology change
    /// (shard split/merge) is the same call over the updated boundary
    /// vector — the model is cheap enough to rebuild from scratch.
    pub fn fit(boundaries: Vec<u64>) -> Self {
        debug_assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "ShardRouter::fit: boundary keys must be sorted ascending"
        );
        let model = Self::fit_linear(&boundaries);
        Self { boundaries, model }
    }

    /// The boundary keys this router was fitted over (one per shard
    /// beyond the first — for a writable topology, the ownership-range
    /// lower bounds of shards `1..N`).
    pub fn boundaries(&self) -> &[u64] {
        &self.boundaries
    }

    /// Least-squares line through `(boundary_i, i + 0.5)` — the center
    /// of the route-value jump at each boundary — plus the max observed
    /// rounding error. Returns `None` when the boundaries cannot
    /// support a useful monotone model (fewer than 2 distinct keys, a
    /// degenerate/non-finite fit, or a fitted window so wide the
    /// learned path would search the whole boundary array anyway), in
    /// which case routing is pure binary search.
    ///
    /// ## Precision near `u64::MAX`
    /// The fit runs in `f64`, where distinct keys above 2^53 can
    /// collapse to one value (`key as f64` keeps 53 bits of mantissa).
    /// Two defenses keep that lossiness harmless rather than silently
    /// wrong:
    ///
    /// * the normal equations are solved in **mean-centered** form
    ///   (`slope = Σ dx·dy / Σ dx²` with `dx = x − x̄`), so huge key
    ///   magnitudes cannot cancel catastrophically the way the raw
    ///   `n·Σx² − (Σx)²` determinant does — the model's `err` window
    ///   reflects real prediction error, not accumulation noise;
    /// * correctness never rests on the model at all: the fitted window
    ///   only *positions* a `partition_point` search whose answer must
    ///   then pass the exact-integer certificate in
    ///   [`ShardRouter::route`]/[`ShardRouter::route_owner`]. Collapsed
    ///   keys can at worst miss the window and fail the certificate,
    ///   which falls back to binary search — never a wrong route.
    fn fit_linear(boundaries: &[u64]) -> Option<LinearRoute> {
        let n = boundaries.len();
        if n < 2 || boundaries.first() == boundaries.last() {
            return None;
        }
        let nf = n as f64;
        let mean_x = boundaries.iter().map(|&b| b as f64).sum::<f64>() / nf;
        let mean_y = nf / 2.0; // mean of i + 0.5 over i in 0..n
        let (mut var, mut cov) = (0.0f64, 0.0f64);
        for (i, &b) in boundaries.iter().enumerate() {
            let dx = b as f64 - mean_x;
            let dy = (i as f64 + 0.5) - mean_y;
            var += dx * dx;
            cov += dx * dy;
        }
        if !var.is_finite() || var < f64::EPSILON {
            return None;
        }
        let slope = cov / var;
        let intercept = mean_y - slope * mean_x;
        if !slope.is_finite() || !intercept.is_finite() || slope < 0.0 {
            return None;
        }
        let mut model = LinearRoute {
            slope,
            intercept,
            err: 0,
        };
        // Window half-width: the worst rounded miss at any boundary key
        // against both route values that meet there (just-below keys
        // route to i, the boundary key itself to at most i+1), plus one
        // for the rounding of interior keys.
        let mut err = 0usize;
        for (i, &b) in boundaries.iter().enumerate() {
            let p = model.predict(b);
            if !p.is_finite() {
                return None;
            }
            let rounded = p.round().clamp(0.0, n as f64) as usize;
            err = err.max(rounded.abs_diff(i)).max(rounded.abs_diff(i + 1));
        }
        model.err = err + 1;
        // A window as wide as the array certifies nothing the binary
        // fallback wouldn't find with the same comparisons — the
        // "learned" path would be pure overhead, so don't keep it.
        if model.err >= n {
            return None;
        }
        Some(model)
    }

    /// Number of shards this router serves.
    pub fn shards(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Whether the learned fast path is active (false on degenerate
    /// boundary sets, where routing is pure binary search).
    pub fn is_learned(&self) -> bool {
        self.model.is_some()
    }

    /// The fitted window half-width of the active learned model, or
    /// `None` on the binary fallback. Diagnostic: `fit` guarantees any
    /// active model's window is strictly narrower than the boundary
    /// array (otherwise the model is rejected as useless).
    pub fn window_err(&self) -> Option<usize> {
        self.model.as_ref().map(|m| m.err)
    }

    /// The shard whose position range contains `lower_bound(key)` of
    /// the full array. Learned prediction + verified window when a
    /// model is fitted; exact binary search otherwise or whenever the
    /// certificate fails.
    #[inline]
    pub fn route(&self, key: u64) -> usize {
        let n = self.boundaries.len();
        if let Some(m) = &self.model {
            let p = m.predict(key);
            if p.is_finite() {
                let center = p.round().clamp(0.0, n as f64) as usize;
                let lo = center.saturating_sub(m.err).min(n);
                let hi = (center.saturating_add(m.err)).min(n);
                let r = lo + self.boundaries[lo..hi].partition_point(|&b| b < key);
                // O(1) global certificate: r is THE route iff every
                // boundary before it is < key and the one at it is >= key.
                if (r == 0 || self.boundaries[r - 1] < key) && (r == n || self.boundaries[r] >= key)
                {
                    return r;
                }
            }
        }
        route_binary(&self.boundaries, key)
    }

    /// The shard that *owns* `key` under half-open ownership ranges
    /// (`[boundaries[s-1], boundaries[s])` — see
    /// `li_index::partition::route_owner_binary`): the routing rule of
    /// the writable sharded path, where every key must have exactly one
    /// home shard. Same learned fast path as [`ShardRouter::route`],
    /// with the certificate shifted to the ownership convention
    /// (`boundaries[r-1] <= key < boundaries[r]`).
    #[inline]
    pub fn route_owner(&self, key: u64) -> usize {
        let n = self.boundaries.len();
        if let Some(m) = &self.model {
            let p = m.predict(key);
            if p.is_finite() {
                let center = p.round().clamp(0.0, n as f64) as usize;
                let lo = center.saturating_sub(m.err).min(n);
                let hi = (center.saturating_add(m.err)).min(n);
                let r = lo + self.boundaries[lo..hi].partition_point(|&b| b <= key);
                // O(1) ownership certificate.
                if (r == 0 || self.boundaries[r - 1] <= key) && (r == n || self.boundaries[r] > key)
                {
                    return r;
                }
            }
        }
        route_owner_binary(&self.boundaries, key)
    }

    /// Router overhead in bytes (boundary keys + model).
    pub fn size_bytes(&self) -> usize {
        self.boundaries.len() * std::mem::size_of::<u64>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_set(boundaries: &[u64]) -> Vec<u64> {
        let mut qs = vec![0u64, 1, u64::MAX - 1, u64::MAX];
        for &b in boundaries {
            qs.extend_from_slice(&[b.saturating_sub(1), b, b.saturating_add(1)]);
        }
        qs
    }

    #[test]
    fn learned_route_always_matches_binary() {
        let boundary_sets: Vec<Vec<u64>> = vec![
            vec![],
            vec![100],
            (1..50u64).map(|i| i * 1000).collect(),
            (1..50u64).map(|i| i * i * 7919).collect(), // quadratic: model misses
            vec![5, 5, 5, 5],                           // duplicate boundaries
            vec![0, 1, u64::MAX - 1, u64::MAX],         // extreme spread
            (0..100u64).map(|i| i / 10).collect(),      // long runs
        ];
        for bounds in boundary_sets {
            let router = ShardRouter::fit(bounds.clone());
            assert_eq!(router.shards(), bounds.len() + 1);
            for q in probe_set(&bounds) {
                assert_eq!(
                    router.route(q),
                    route_binary(&bounds, q),
                    "bounds={bounds:?} q={q} learned={}",
                    router.is_learned()
                );
            }
        }
    }

    #[test]
    fn learned_owner_route_always_matches_binary() {
        let boundary_sets: Vec<Vec<u64>> = vec![
            vec![],
            vec![100],
            (1..50u64).map(|i| i * 1000).collect(),
            (1..50u64).map(|i| i * i * 7919).collect(),
            vec![5, 5, 5, 5],
            vec![0, 1, u64::MAX - 1, u64::MAX],
            (0..100u64).map(|i| i / 10).collect(),
        ];
        for bounds in boundary_sets {
            let router = ShardRouter::fit(bounds.clone());
            for q in probe_set(&bounds) {
                assert_eq!(
                    router.route_owner(q),
                    route_owner_binary(&bounds, q),
                    "bounds={bounds:?} q={q} learned={}",
                    router.is_learned()
                );
            }
        }
    }

    #[test]
    fn owner_and_read_routes_differ_only_on_boundary_keys() {
        let bounds: Vec<u64> = (1..32u64).map(|i| i * 500).collect();
        let router = ShardRouter::fit(bounds.clone());
        for q in probe_set(&bounds) {
            let read = router.route(q);
            let owner = router.route_owner(q);
            if bounds.binary_search(&q).is_ok() {
                assert_eq!(owner, read + 1, "boundary key q={q}");
            } else {
                assert_eq!(owner, read, "q={q}");
            }
        }
    }

    #[test]
    fn boundaries_accessor_round_trips() {
        let bounds = vec![3u64, 9, 27];
        let router = ShardRouter::fit(bounds.clone());
        assert_eq!(router.boundaries(), &bounds[..]);
    }

    #[test]
    fn near_uniform_boundaries_get_a_learned_model() {
        let bounds: Vec<u64> = (1..128u64).map(|i| i * 1_000_003).collect();
        let router = ShardRouter::fit(bounds);
        assert!(router.is_learned());
    }

    #[test]
    fn degenerate_boundaries_fall_back_to_binary() {
        for bounds in [vec![], vec![42], vec![7, 7, 7]] {
            let router = ShardRouter::fit(bounds);
            assert!(!router.is_learned());
        }
    }

    #[test]
    fn router_size_is_small() {
        let bounds: Vec<u64> = (1..16u64).map(|i| i * 100).collect();
        let router = ShardRouter::fit(bounds);
        assert!(router.size_bytes() < 1024);
    }

    /// Boundary sets that stress `f64` precision: distinct u64 keys at
    /// and above 2^53 collapse to identical f64 values, so the learned
    /// model's arithmetic runs on lossy inputs. Every route must still
    /// match the exact-integer reference — a wrong-but-certified window
    /// is the failure mode this pins down.
    fn high_precision_boundary_sets() -> Vec<Vec<u64>> {
        const P53: u64 = 1 << 53;
        vec![
            // Consecutive keys right at the precision cliff: f64 can no
            // longer represent the gaps.
            (0..64u64).map(|i| P53 + i).collect(),
            // A tight cluster hugging u64::MAX.
            (0..64u64).map(|i| u64::MAX - 63 + i).collect(),
            // Uniform spread across [2^53, u64::MAX].
            (0..64u64)
                .map(|i| P53 + i * ((u64::MAX - P53) / 64))
                .collect(),
            // Catastrophic-cancellation bait: huge nearly-equal keys
            // with one outlier (the uncentered normal equations lose
            // ~all significant bits on sets like this).
            vec![P53, u64::MAX - 2, u64::MAX - 1, u64::MAX],
            // Mixed magnitudes: tiny keys and 2^53+ keys in one set.
            vec![1, 2, 3, P53, P53 + 1, u64::MAX - 1, u64::MAX],
            // Adjacent f64-equal pairs (2^53 + 2k and + 2k+1 round to
            // the same f64 for small k).
            (0..32u64)
                .flat_map(|i| [P53 + 2 * i, P53 + 2 * i + 1])
                .collect(),
        ]
    }

    #[test]
    fn routes_above_2_pow_53_match_binary_exactly() {
        for bounds in high_precision_boundary_sets() {
            let router = ShardRouter::fit(bounds.clone());
            for q in probe_set(&bounds) {
                assert_eq!(
                    router.route(q),
                    route_binary(&bounds, q),
                    "bounds[0]={} n={} q={q} learned={}",
                    bounds[0],
                    bounds.len(),
                    router.is_learned()
                );
                assert_eq!(
                    router.route_owner(q),
                    route_owner_binary(&bounds, q),
                    "owner: bounds[0]={} n={} q={q} learned={}",
                    bounds[0],
                    bounds.len(),
                    router.is_learned()
                );
            }
        }
    }

    #[test]
    fn centered_fit_survives_huge_magnitudes() {
        // Uniformly spaced boundaries high above 2^53 are exactly the
        // case the uncentered determinant `n·Σx² − (Σx)²` destroys
        // (every x² ≈ 1.3e38; their differences are noise). The
        // centered fit must keep the learned path here.
        let base = 1u64 << 60;
        let bounds: Vec<u64> = (0..128u64).map(|i| base + i * (1 << 40)).collect();
        let router = ShardRouter::fit(bounds.clone());
        assert!(
            router.is_learned(),
            "uniform high-magnitude boundaries must stay learnable"
        );
        for q in probe_set(&bounds) {
            assert_eq!(router.route(q), route_binary(&bounds, q), "q={q}");
        }
    }

    #[test]
    fn useless_windows_fall_back_to_binary() {
        // An adversarial set whose best-fit window covers the whole
        // array: the learned path would do strictly more work than the
        // fallback, so fit() must reject the model outright.
        let mut bounds: Vec<u64> = (0..20u64).collect(); // dense cluster
        bounds.push(u64::MAX); // one far outlier flattens the line
        let router = ShardRouter::fit(bounds.clone());
        if let Some(err) = router.window_err() {
            assert!(err < bounds.len(), "window must narrow the search");
        }
        for q in probe_set(&bounds) {
            assert_eq!(router.route(q), route_binary(&bounds, q), "q={q}");
        }
    }
}
