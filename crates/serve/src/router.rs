//! The shard router: learned fast path, binary fallback, O(1) global
//! verification.
//!
//! Routing is itself a tiny lower-bound problem — "which shard's first
//! key is the last one `< q`?" — so the paper's thesis applies to it
//! recursively: fit a linear model over the boundary keys and use it as
//! a position hint, exactly like an RMI leaf, with `partition_point`
//! over a narrow verified window as the last mile. Because the correct
//! answer has an O(1) *global* certificate (`boundaries[r-1] < q <=
//! boundaries[r]`), the learned path can never return a wrong shard: a
//! failed certificate falls back to full binary search.

use li_index::partition::{route_binary, route_owner_binary};

/// Linear routing model over the boundary keys, with the validated
/// window half-width that makes its answers certifiable.
#[derive(Debug, Clone, Copy)]
struct LinearRoute {
    slope: f64,
    intercept: f64,
    /// Half-width of the search window around the prediction; fitted so
    /// the window provably brackets the true route at every boundary.
    err: usize,
}

impl LinearRoute {
    #[inline]
    fn predict(&self, key: u64) -> f64 {
        self.slope * key as f64 + self.intercept
    }
}

/// Routes a query key to the shard whose position range contains its
/// global lower bound.
///
/// Built from the shard boundary keys (first key of every shard except
/// shard 0, see `li_index::partition::boundaries`). Uses a learned
/// linear model when the boundaries support one (monotone, finite fit),
/// binary search otherwise — and *always* verifies the learned answer
/// with the O(1) certificate before trusting it.
///
/// Two routing rules share the machinery:
///
/// * [`ShardRouter::route`] — the *read* rule: the shard whose position
///   range contains `lower_bound(key)` (certificate
///   `boundaries[r-1] < key <= boundaries[r]`).
/// * [`ShardRouter::route_owner`] — the *ownership* rule of the
///   writable path: the unique shard whose half-open range
///   `[boundaries[s-1], boundaries[s])` contains the key (certificate
///   `boundaries[r-1] <= key < boundaries[r]`), so every key has
///   exactly one home to insert into.
///
/// # Examples
/// ```
/// use li_serve::ShardRouter;
///
/// // Three shards: [0, 100), [100, 200), [200, u64::MAX].
/// let router = ShardRouter::fit(vec![100, 200]);
/// assert_eq!(router.shards(), 3);
/// assert_eq!(router.route_owner(99), 0);
/// // A boundary key is OWNED by the shard it opens…
/// assert_eq!(router.route_owner(100), 1);
/// // …while the read rule sends lower_bound(100) to the shard that
/// // precedes it (the first stored key >= 100 could sit at the end of
/// // shard 0's position range).
/// assert_eq!(router.route(100), 0);
/// assert_eq!(router.route_owner(u64::MAX), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ShardRouter {
    boundaries: Vec<u64>,
    model: Option<LinearRoute>,
}

impl ShardRouter {
    /// Fit a router over the boundary keys (must be sorted; one entry
    /// per shard beyond the first). Refitting after a topology change
    /// (shard split/merge) is the same call over the updated boundary
    /// vector — the model is cheap enough to rebuild from scratch.
    pub fn fit(boundaries: Vec<u64>) -> Self {
        debug_assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "ShardRouter::fit: boundary keys must be sorted ascending"
        );
        let model = Self::fit_linear(&boundaries);
        Self { boundaries, model }
    }

    /// The boundary keys this router was fitted over (one per shard
    /// beyond the first — for a writable topology, the ownership-range
    /// lower bounds of shards `1..N`).
    pub fn boundaries(&self) -> &[u64] {
        &self.boundaries
    }

    /// Least-squares line through `(boundary_i, i + 0.5)` — the center
    /// of the route-value jump at each boundary — plus the max observed
    /// rounding error. Returns `None` when the boundaries cannot
    /// support a useful monotone model (fewer than 2 distinct keys, or
    /// a degenerate/non-finite fit), in which case routing is pure
    /// binary search.
    fn fit_linear(boundaries: &[u64]) -> Option<LinearRoute> {
        let n = boundaries.len();
        if n < 2 || boundaries.first() == boundaries.last() {
            return None;
        }
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (i, &b) in boundaries.iter().enumerate() {
            let (x, y) = (b as f64, i as f64 + 0.5);
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let nf = n as f64;
        let det = nf * sxx - sx * sx;
        if det.abs() < f64::EPSILON {
            return None;
        }
        let slope = (nf * sxy - sx * sy) / det;
        let intercept = (sy - slope * sx) / nf;
        if !slope.is_finite() || !intercept.is_finite() || slope < 0.0 {
            return None;
        }
        let mut model = LinearRoute {
            slope,
            intercept,
            err: 0,
        };
        // Window half-width: the worst rounded miss at any boundary key
        // against both route values that meet there (just-below keys
        // route to i, the boundary key itself to at most i+1), plus one
        // for the rounding of interior keys.
        let mut err = 0usize;
        for (i, &b) in boundaries.iter().enumerate() {
            let p = model.predict(b);
            if !p.is_finite() {
                return None;
            }
            let rounded = p.round().clamp(0.0, n as f64) as usize;
            err = err.max(rounded.abs_diff(i)).max(rounded.abs_diff(i + 1));
        }
        model.err = err + 1;
        Some(model)
    }

    /// Number of shards this router serves.
    pub fn shards(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Whether the learned fast path is active (false on degenerate
    /// boundary sets, where routing is pure binary search).
    pub fn is_learned(&self) -> bool {
        self.model.is_some()
    }

    /// The shard whose position range contains `lower_bound(key)` of
    /// the full array. Learned prediction + verified window when a
    /// model is fitted; exact binary search otherwise or whenever the
    /// certificate fails.
    #[inline]
    pub fn route(&self, key: u64) -> usize {
        let n = self.boundaries.len();
        if let Some(m) = &self.model {
            let p = m.predict(key);
            if p.is_finite() {
                let center = p.round().clamp(0.0, n as f64) as usize;
                let lo = center.saturating_sub(m.err).min(n);
                let hi = (center.saturating_add(m.err)).min(n);
                let r = lo + self.boundaries[lo..hi].partition_point(|&b| b < key);
                // O(1) global certificate: r is THE route iff every
                // boundary before it is < key and the one at it is >= key.
                if (r == 0 || self.boundaries[r - 1] < key) && (r == n || self.boundaries[r] >= key)
                {
                    return r;
                }
            }
        }
        route_binary(&self.boundaries, key)
    }

    /// The shard that *owns* `key` under half-open ownership ranges
    /// (`[boundaries[s-1], boundaries[s])` — see
    /// `li_index::partition::route_owner_binary`): the routing rule of
    /// the writable sharded path, where every key must have exactly one
    /// home shard. Same learned fast path as [`ShardRouter::route`],
    /// with the certificate shifted to the ownership convention
    /// (`boundaries[r-1] <= key < boundaries[r]`).
    #[inline]
    pub fn route_owner(&self, key: u64) -> usize {
        let n = self.boundaries.len();
        if let Some(m) = &self.model {
            let p = m.predict(key);
            if p.is_finite() {
                let center = p.round().clamp(0.0, n as f64) as usize;
                let lo = center.saturating_sub(m.err).min(n);
                let hi = (center.saturating_add(m.err)).min(n);
                let r = lo + self.boundaries[lo..hi].partition_point(|&b| b <= key);
                // O(1) ownership certificate.
                if (r == 0 || self.boundaries[r - 1] <= key) && (r == n || self.boundaries[r] > key)
                {
                    return r;
                }
            }
        }
        route_owner_binary(&self.boundaries, key)
    }

    /// Router overhead in bytes (boundary keys + model).
    pub fn size_bytes(&self) -> usize {
        self.boundaries.len() * std::mem::size_of::<u64>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_set(boundaries: &[u64]) -> Vec<u64> {
        let mut qs = vec![0u64, 1, u64::MAX - 1, u64::MAX];
        for &b in boundaries {
            qs.extend_from_slice(&[b.saturating_sub(1), b, b.saturating_add(1)]);
        }
        qs
    }

    #[test]
    fn learned_route_always_matches_binary() {
        let boundary_sets: Vec<Vec<u64>> = vec![
            vec![],
            vec![100],
            (1..50u64).map(|i| i * 1000).collect(),
            (1..50u64).map(|i| i * i * 7919).collect(), // quadratic: model misses
            vec![5, 5, 5, 5],                           // duplicate boundaries
            vec![0, 1, u64::MAX - 1, u64::MAX],         // extreme spread
            (0..100u64).map(|i| i / 10).collect(),      // long runs
        ];
        for bounds in boundary_sets {
            let router = ShardRouter::fit(bounds.clone());
            assert_eq!(router.shards(), bounds.len() + 1);
            for q in probe_set(&bounds) {
                assert_eq!(
                    router.route(q),
                    route_binary(&bounds, q),
                    "bounds={bounds:?} q={q} learned={}",
                    router.is_learned()
                );
            }
        }
    }

    #[test]
    fn learned_owner_route_always_matches_binary() {
        let boundary_sets: Vec<Vec<u64>> = vec![
            vec![],
            vec![100],
            (1..50u64).map(|i| i * 1000).collect(),
            (1..50u64).map(|i| i * i * 7919).collect(),
            vec![5, 5, 5, 5],
            vec![0, 1, u64::MAX - 1, u64::MAX],
            (0..100u64).map(|i| i / 10).collect(),
        ];
        for bounds in boundary_sets {
            let router = ShardRouter::fit(bounds.clone());
            for q in probe_set(&bounds) {
                assert_eq!(
                    router.route_owner(q),
                    route_owner_binary(&bounds, q),
                    "bounds={bounds:?} q={q} learned={}",
                    router.is_learned()
                );
            }
        }
    }

    #[test]
    fn owner_and_read_routes_differ_only_on_boundary_keys() {
        let bounds: Vec<u64> = (1..32u64).map(|i| i * 500).collect();
        let router = ShardRouter::fit(bounds.clone());
        for q in probe_set(&bounds) {
            let read = router.route(q);
            let owner = router.route_owner(q);
            if bounds.binary_search(&q).is_ok() {
                assert_eq!(owner, read + 1, "boundary key q={q}");
            } else {
                assert_eq!(owner, read, "q={q}");
            }
        }
    }

    #[test]
    fn boundaries_accessor_round_trips() {
        let bounds = vec![3u64, 9, 27];
        let router = ShardRouter::fit(bounds.clone());
        assert_eq!(router.boundaries(), &bounds[..]);
    }

    #[test]
    fn near_uniform_boundaries_get_a_learned_model() {
        let bounds: Vec<u64> = (1..128u64).map(|i| i * 1_000_003).collect();
        let router = ShardRouter::fit(bounds);
        assert!(router.is_learned());
    }

    #[test]
    fn degenerate_boundaries_fall_back_to_binary() {
        for bounds in [vec![], vec![42], vec![7, 7, 7]] {
            let router = ShardRouter::fit(bounds);
            assert!(!router.is_learned());
        }
    }

    #[test]
    fn router_size_is_small() {
        let bounds: Vec<u64> = (1..16u64).map(|i| i * 100).collect();
        let router = ShardRouter::fit(bounds);
        assert!(router.size_bytes() < 1024);
    }
}
