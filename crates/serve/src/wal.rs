//! Write-ahead logging for the sharded write path: the durability half
//! that snapshots alone cannot provide.
//!
//! [`crate::persist`] makes restarts warm — but every write
//! acknowledged *since* the last snapshot used to die with the
//! process. A [`Wal`] closes that gap with the classic discipline:
//! append a checksummed record **before** the write touches the
//! in-memory tiers, group-commit `fsync` per a [`WalSyncPolicy`], and
//! truncate the log whenever a snapshot publishes (the snapshot's
//! header carries the last LSN it covers, so recovery knows exactly
//! which log suffix is still live).
//!
//! # Record format
//!
//! Every record is length-prefixed and individually checksummed:
//!
//! ```text
//!  ┌──────────┬──────────────────────────────┬──────────────┐
//!  │ len: u32 │ payload (len bytes)          │ fnv1a: u64   │
//!  └──────────┴──────────────────────────────┴──────────────┘
//!              payload = lsn: u64 · kind: u8 · body
//!              kind 1 (insert):       body = key: u64
//!              kind 2 (insert_batch): body = count: u32 · count × u64
//! ```
//!
//! All integers are little-endian; the checksum covers the payload
//! (everything between the length prefix and the checksum itself). A
//! crash mid-append leaves a *torn tail*: either too few bytes for the
//! declared length, or a checksum that no longer matches. [`scan`]
//! stops at the first invalid record and reports the byte offset of
//! the last valid one, so recovery can truncate the tail and end up
//! with **exactly the prefix of appended records** — never a gap,
//! never a partial record, never a panic on garbage bytes.
//!
//! # Durability semantics
//!
//! A record is *durable* once it has been `fsync`ed — under
//! [`WalSyncPolicy::PerRecord`] that is every append; under the
//! group-commit policies ([`WalSyncPolicy::EveryN`],
//! [`WalSyncPolicy::EveryInterval`]) appends between sync points are
//! buffered in the OS page cache and a crash may lose the *unsynced
//! suffix* (and only that suffix — the synced prefix always survives).
//! [`Wal::sync`] forces a sync point; callers that need a hard
//! durability guarantee for a specific write call it (or use
//! `PerRecord`).
//!
//! # Error latching
//!
//! A failed append (or sync) latches the error: the [`Wal`] refuses
//! every subsequent append with [`WalError::Failed`] so a partial
//! record can never be followed by valid ones (which recovery's
//! stop-at-first-invalid scan would otherwise silently drop). The
//! latch clears when the log is truncated at a snapshot publish —
//! the snapshot has durably captured everything the log was for.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::obs::{events, ServeMetrics};

/// Record kind: a single [`crate::ShardedWritable::insert`].
const KIND_INSERT: u8 = 1;
/// Record kind: an [`crate::ShardedWritable::insert_batch`].
const KIND_BATCH: u8 = 2;

/// Smallest possible payload: lsn (8) + kind (1).
const MIN_PAYLOAD: usize = 9;
/// Refuse batch records whose declared length is absurd — a corrupt
/// length prefix must not drive a huge allocation before the checksum
/// gets a chance to reject it.
const MAX_PAYLOAD: usize = 64 << 20;

/// FNV-1a (64-bit) — the same integrity check the snapshot header
/// uses: tiny, dependency-free, catches truncation and bit-rot.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// When the WAL `fsync`s — the group-commit knob. Looser policies
/// amortize the sync over more records; a crash loses at most the
/// records appended since the last sync point (the *unsynced suffix*).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalSyncPolicy {
    /// `fsync` after every record: nothing acknowledged is ever lost,
    /// at one sync per write.
    PerRecord,
    /// `fsync` once per `n` appended records (classic group commit).
    /// `EveryN(1)` is equivalent to [`WalSyncPolicy::PerRecord`].
    EveryN(usize),
    /// `fsync` on the first append after this much time has passed
    /// since the previous sync point.
    EveryInterval(Duration),
}

impl Default for WalSyncPolicy {
    /// Group commit every 64 records — the setting `repro wal`
    /// benchmarks against the inline scalar write path.
    fn default() -> Self {
        WalSyncPolicy::EveryN(64)
    }
}

/// Why a WAL append or sync failed.
#[derive(Debug)]
pub enum WalError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// A previous append or sync failed; the log refuses further
    /// appends until it is truncated at a snapshot publish (see the
    /// module docs on error latching).
    Failed(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal: io error: {e}"),
            WalError::Failed(m) => write!(f, "wal: log failed earlier: {m}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Failed(_) => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number — strictly increasing across the log.
    pub lsn: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// The operation a [`WalRecord`] carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A scalar insert of one key.
    Insert(u64),
    /// A batched insert (the batch is one atomic record: either the
    /// whole batch is in the durable prefix or none of it is).
    InsertBatch(Vec<u64>),
}

/// What a [`scan`] found in a log file.
#[derive(Debug)]
pub struct WalScan {
    /// Every valid record, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset one past the last valid record — the length the
    /// file should be truncated to if `valid_len < file_len`.
    pub valid_len: u64,
    /// Actual file length (≥ `valid_len`; the difference is the torn
    /// or corrupt tail).
    pub file_len: u64,
    /// Highest LSN among the valid records (0 when the log is empty).
    pub last_lsn: u64,
}

impl WalScan {
    /// Bytes of torn / corrupt tail the scan stopped at.
    pub fn torn_bytes(&self) -> u64 {
        self.file_len - self.valid_len
    }
}

/// Scan a log file: decode records until the first torn or
/// checksum-failing one, and report where the valid prefix ends. A
/// missing file scans as an empty log. Never panics on garbage —
/// every read is bounds-checked and every record checksummed.
pub fn scan(path: impl AsRef<Path>) -> Result<WalScan, WalError> {
    let mut bytes = Vec::new();
    match File::open(path.as_ref()) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }
    let file_len = bytes.len() as u64;
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut last_lsn = 0u64;
    while let Some((record, next)) = decode_at(&bytes, at) {
        // LSNs must be strictly increasing; a stale or duplicated
        // record (e.g. from a misdirected write) ends the valid prefix
        // exactly like a checksum failure would.
        if record.lsn <= last_lsn {
            break;
        }
        last_lsn = record.lsn;
        records.push(record);
        at = next;
    }
    Ok(WalScan {
        records,
        valid_len: at as u64,
        file_len,
        last_lsn,
    })
}

/// Decode the record starting at `at`, returning it and the offset of
/// the next record — or `None` when the bytes there are torn, corrupt,
/// or simply absent (end of log).
fn decode_at(bytes: &[u8], at: usize) -> Option<(WalRecord, usize)> {
    let rest = bytes.get(at..)?;
    if rest.len() < 4 {
        return None; // torn length prefix (or clean end of log)
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().ok()?) as usize;
    if !(MIN_PAYLOAD..=MAX_PAYLOAD).contains(&len) || rest.len() < 4 + len + 8 {
        return None; // absurd length or torn payload/checksum
    }
    let payload = &rest[4..4 + len];
    let sum = u64::from_le_bytes(rest[4 + len..4 + len + 8].try_into().ok()?);
    if fnv1a(payload) != sum {
        return None; // bit-rot or a torn overwrite
    }
    let lsn = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let op = match payload[8] {
        KIND_INSERT => {
            if payload.len() != MIN_PAYLOAD + 8 {
                return None;
            }
            WalOp::Insert(u64::from_le_bytes(payload[9..17].try_into().ok()?))
        }
        KIND_BATCH => {
            if payload.len() < MIN_PAYLOAD + 4 {
                return None;
            }
            let count = u32::from_le_bytes(payload[9..13].try_into().ok()?) as usize;
            let body = &payload[13..];
            if body.len() != count * 8 {
                return None;
            }
            WalOp::InsertBatch(
                body.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
                    .collect(),
            )
        }
        _ => return None, // unknown kind: treat as corruption
    };
    Some((WalRecord { lsn, op }, at + 4 + len + 8))
}

fn encode(lsn: u64, op_kind: u8, body: &dyn Fn(&mut Vec<u8>)) -> Vec<u8> {
    let mut payload = Vec::with_capacity(MIN_PAYLOAD + 16);
    payload.extend_from_slice(&lsn.to_le_bytes());
    payload.push(op_kind);
    body(&mut payload);
    let mut out = Vec::with_capacity(4 + payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out
}

/// `fsync` the directory containing `path`, so a just-created,
/// just-renamed or just-truncated entry survives a power cut. On
/// non-unix targets directory handles cannot be opened; the rename
/// itself is the best available barrier there.
pub(crate) fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

/// An append-only write-ahead log. One lives inside each durable
/// [`crate::ShardedWritable`] (behind its WAL mutex); it can also be
/// driven directly, as the crash-injection suite does.
///
/// # Examples
/// ```
/// use li_serve::wal::{scan, Wal, WalOp, WalSyncPolicy};
///
/// let path = std::env::temp_dir().join(format!("wal-doc-{}", std::process::id()));
/// let mut wal = Wal::create(&path, WalSyncPolicy::PerRecord).unwrap();
/// wal.append_insert(7).unwrap();
/// wal.append_batch(&[8, 9]).unwrap();
/// drop(wal);
///
/// let found = scan(&path).unwrap();
/// assert_eq!(found.records.len(), 2);
/// assert_eq!(found.records[1].op, WalOp::InsertBatch(vec![8, 9]));
/// assert_eq!(found.torn_bytes(), 0);
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: WalSyncPolicy,
    /// Next LSN to assign (strictly increasing, never reused — even
    /// across truncations, so a snapshot LSN always partitions the
    /// history into covered/uncovered).
    next_lsn: u64,
    /// Bytes appended so far (the file length, absent torn tails).
    len: u64,
    /// Records appended since the last sync point.
    unsynced: usize,
    last_sync: Instant,
    /// Syncs issued (diagnostics; `repro wal` reports it).
    syncs: u64,
    /// Latched failure: once an append or sync fails, every later
    /// append refuses until the log is truncated (see module docs).
    failed: Option<String>,
    /// The owning structure's observability bundle ([`Wal::set_obs`]);
    /// standalone logs (crash-injection suite, doctests) record
    /// nothing.
    obs: Option<Arc<ServeMetrics>>,
}

impl Wal {
    /// Create a fresh, empty log at `path`, truncating anything that
    /// was there, and `fsync` the parent directory so the file's
    /// existence is itself durable.
    pub fn create(path: impl AsRef<Path>, policy: WalSyncPolicy) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.sync_all()?;
        sync_parent_dir(&path)?;
        Ok(Self {
            file,
            path,
            policy,
            next_lsn: 1,
            len: 0,
            unsynced: 0,
            last_sync: Instant::now(),
            syncs: 0,
            failed: None,
            obs: None,
        })
    }

    /// Open an existing log for appending after recovery: the caller
    /// (normally [`crate::ShardedWritable::recover`]) has already
    /// scanned it and knows the highest valid LSN; any torn tail is
    /// truncated here. New records continue from
    /// `max(scan.last_lsn, lsn_floor) + 1` — the floor matters when
    /// the log was truncated at a snapshot publish (the scan then sees
    /// an empty log, but LSNs must stay above the snapshot's
    /// watermark, or the *next* recovery would skip fresh records as
    /// already covered).
    pub fn open_after_recovery(
        path: impl AsRef<Path>,
        policy: WalSyncPolicy,
        scan: &WalScan,
        lsn_floor: u64,
    ) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        // `truncate(false)`: the valid prefix must survive; only the
        // torn tail (if any) is cut below via `set_len`.
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        if scan.valid_len < scan.file_len {
            file.set_len(scan.valid_len)?;
            file.sync_all()?;
        }
        let mut wal = Self {
            file,
            path,
            policy,
            next_lsn: scan.last_lsn.max(lsn_floor) + 1,
            len: scan.valid_len,
            unsynced: 0,
            last_sync: Instant::now(),
            syncs: 0,
            failed: None,
            obs: None,
        };
        // Appends go after the valid prefix, not wherever the cursor
        // happened to land.
        wal.file
            .seek_write_position(scan.valid_len)
            .map_err(WalError::Io)?;
        Ok(wal)
    }

    /// Append a scalar-insert record, returning its LSN. Durable at
    /// the next sync point per the policy (immediately, under
    /// [`WalSyncPolicy::PerRecord`]).
    pub fn append_insert(&mut self, key: u64) -> Result<u64, WalError> {
        self.append(KIND_INSERT, &|buf: &mut Vec<u8>| {
            buf.extend_from_slice(&key.to_le_bytes())
        })
    }

    /// Append a batch-insert record (one atomic record for the whole
    /// batch), returning its LSN.
    pub fn append_batch(&mut self, keys: &[u64]) -> Result<u64, WalError> {
        self.append(KIND_BATCH, &|buf: &mut Vec<u8>| {
            buf.extend_from_slice(&(keys.len() as u32).to_le_bytes());
            for &k in keys {
                buf.extend_from_slice(&k.to_le_bytes());
            }
        })
    }

    fn append(&mut self, kind: u8, body: &dyn Fn(&mut Vec<u8>)) -> Result<u64, WalError> {
        if let Some(why) = &self.failed {
            return Err(WalError::Failed(why.clone()));
        }
        // Timed only with a bundle attached: the append is an encode +
        // buffered write (the fsync is accounted separately in sync()),
        // so the clock-read pair is a modest fixed overhead against it.
        let t = self.obs.as_ref().map(|_| Instant::now());
        let lsn = self.next_lsn;
        let bytes = encode(lsn, kind, body);
        if let Err(e) = self.file.write_all(&bytes) {
            // The file may now hold a partial record; latch so nothing
            // valid can ever be appended after it.
            self.failed = Some(e.to_string());
            self.note_latch();
            return Err(e.into());
        }
        self.next_lsn += 1;
        self.len += bytes.len() as u64;
        self.unsynced += 1;
        if let (Some(obs), Some(t)) = (&self.obs, t) {
            obs.wal_appends.incr();
            obs.wal_append_ns.record_since(t);
        }
        let due = match self.policy {
            WalSyncPolicy::PerRecord => true,
            WalSyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            WalSyncPolicy::EveryInterval(d) => self.last_sync.elapsed() >= d,
        };
        if due {
            self.sync()?;
        }
        Ok(lsn)
    }

    /// Force a sync point now: everything appended so far becomes
    /// durable. A no-op when nothing is unsynced.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if let Some(why) = &self.failed {
            return Err(WalError::Failed(why.clone()));
        }
        if self.unsynced == 0 {
            return Ok(());
        }
        let t = self.obs.as_ref().map(|_| Instant::now());
        if let Err(e) = self.file.sync_data() {
            self.failed = Some(e.to_string());
            self.note_latch();
            return Err(e.into());
        }
        self.unsynced = 0;
        self.last_sync = Instant::now();
        self.syncs += 1;
        if let (Some(obs), Some(t)) = (&self.obs, t) {
            obs.wal_syncs.incr();
            obs.wal_sync_ns.record_since(t);
        }
        Ok(())
    }

    /// Truncate the log to empty — called when a snapshot publish has
    /// durably captured everything logged so far. LSNs keep counting
    /// from where they were (they index the *history*, not the file),
    /// and a latched failure clears: whatever append the failure
    /// interrupted is now covered by the snapshot.
    pub fn truncate_after_snapshot(&mut self) -> Result<(), WalError> {
        let discarded = self.len;
        self.file.set_len(0)?;
        self.file.seek_write_position(0)?;
        self.file.sync_data()?;
        self.len = 0;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        self.failed = None;
        if let Some(obs) = &self.obs {
            obs.wal_truncates.incr();
            obs.event(events::WAL_TRUNCATE, self.last_lsn(), discarded);
        }
        Ok(())
    }

    /// Highest LSN assigned so far (0 when nothing was ever appended).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Bytes appended (the valid file length).
    pub fn position(&self) -> u64 {
        self.len
    }

    /// Sync points issued so far.
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// The latched failure, if an append or sync has failed since the
    /// last truncation.
    pub fn failure(&self) -> Option<&str> {
        self.failed.as_deref()
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sync policy in force.
    pub fn policy(&self) -> WalSyncPolicy {
        self.policy
    }

    /// Attach the owning structure's observability bundle: appends,
    /// syncs and truncations report into its registry from here on.
    pub(crate) fn set_obs(&mut self, obs: Arc<ServeMetrics>) {
        self.obs = Some(obs);
    }

    /// Trace a latch transition. The latch itself (`failure()`) is the
    /// state of record — the ring event is for the post-mortem tail.
    fn note_latch(&self) {
        if let Some(obs) = &self.obs {
            obs.event(events::WAL_LATCH, self.next_lsn, 0);
        }
    }
}

/// `File::seek` without importing `Seek` into every caller — and the
/// one place that documents *why* we seek: append-only positioning
/// after recovery truncation.
trait SeekWrite {
    fn seek_write_position(&mut self, pos: u64) -> std::io::Result<()>;
}

impl SeekWrite for File {
    fn seek_write_position(&mut self, pos: u64) -> std::io::Result<()> {
        use std::io::{Seek, SeekFrom};
        self.seek(SeekFrom::Start(pos))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("li-serve-wal-{}-{name}", std::process::id()))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn appends_scan_back_in_order_with_increasing_lsns() {
        let path = tmp("roundtrip");
        let _g = Cleanup(path.clone());
        let mut wal = Wal::create(&path, WalSyncPolicy::EveryN(2)).unwrap();
        assert_eq!(wal.append_insert(10).unwrap(), 1);
        assert_eq!(wal.append_batch(&[20, 30, 40]).unwrap(), 2);
        assert_eq!(wal.append_insert(50).unwrap(), 3);
        wal.sync().unwrap();
        assert_eq!(wal.last_lsn(), 3);

        let found = scan(&path).unwrap();
        assert_eq!(found.torn_bytes(), 0);
        assert_eq!(found.last_lsn, 3);
        assert_eq!(
            found.records,
            vec![
                WalRecord {
                    lsn: 1,
                    op: WalOp::Insert(10)
                },
                WalRecord {
                    lsn: 2,
                    op: WalOp::InsertBatch(vec![20, 30, 40])
                },
                WalRecord {
                    lsn: 3,
                    op: WalOp::Insert(50)
                },
            ]
        );
    }

    #[test]
    fn missing_file_scans_as_empty() {
        let found = scan(tmp("never-created")).unwrap();
        assert!(found.records.is_empty());
        assert_eq!(found.valid_len, 0);
        assert_eq!(found.last_lsn, 0);
    }

    #[test]
    fn torn_tail_is_detected_at_every_cut_point() {
        let path = tmp("torn");
        let _g = Cleanup(path.clone());
        let mut wal = Wal::create(&path, WalSyncPolicy::PerRecord).unwrap();
        let mut boundaries = vec![0u64];
        for i in 0..5u64 {
            wal.append_insert(i * 7).unwrap();
            boundaries.push(wal.position());
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();

        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let found = scan(&path).unwrap();
            // Valid records = boundaries at or before the cut.
            let want = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(found.records.len(), want, "cut at {cut}");
            assert_eq!(found.valid_len, boundaries[want], "cut at {cut}");
            assert_eq!(found.file_len, cut as u64);
        }
    }

    #[test]
    fn corrupt_byte_ends_the_valid_prefix_there() {
        let path = tmp("flip");
        let _g = Cleanup(path.clone());
        let mut wal = Wal::create(&path, WalSyncPolicy::PerRecord).unwrap();
        let mut boundaries = vec![0u64];
        for i in 0..4u64 {
            wal.append_insert(i + 100).unwrap();
            boundaries.push(wal.position());
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();

        for pos in 0..full.len() {
            let mut bytes = full.clone();
            bytes[pos] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            let found = scan(&path).unwrap();
            // The flipped byte lives in record r: every record before r
            // must survive, r and everything after must be dropped.
            let r = boundaries.iter().filter(|&&b| b <= pos as u64).count() - 1;
            assert_eq!(found.records.len(), r, "flip at {pos}");
            assert_eq!(found.valid_len, boundaries[r], "flip at {pos}");
            for (i, rec) in found.records.iter().enumerate() {
                assert_eq!(rec.op, WalOp::Insert(i as u64 + 100));
            }
        }
    }

    #[test]
    fn recovery_open_truncates_the_tail_and_continues_lsns() {
        let path = tmp("reopen");
        let _g = Cleanup(path.clone());
        let mut wal = Wal::create(&path, WalSyncPolicy::PerRecord).unwrap();
        for i in 0..3u64 {
            wal.append_insert(i).unwrap();
        }
        drop(wal);
        // Tear the tail mid-record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();

        let found = scan(&path).unwrap();
        assert_eq!(found.records.len(), 2);
        assert!(found.torn_bytes() > 0);
        let mut wal = Wal::open_after_recovery(&path, WalSyncPolicy::PerRecord, &found, 0).unwrap();
        assert_eq!(wal.last_lsn(), 2);
        assert_eq!(wal.append_insert(99).unwrap(), 3, "LSNs continue");
        drop(wal);

        let found = scan(&path).unwrap();
        assert_eq!(found.torn_bytes(), 0, "tail was truncated on reopen");
        assert_eq!(found.records.len(), 3);
        assert_eq!(found.records[2].op, WalOp::Insert(99));
    }

    #[test]
    fn truncate_after_snapshot_empties_but_keeps_counting() {
        let path = tmp("truncate");
        let _g = Cleanup(path.clone());
        let mut wal = Wal::create(&path, WalSyncPolicy::PerRecord).unwrap();
        wal.append_insert(1).unwrap();
        wal.append_insert(2).unwrap();
        wal.truncate_after_snapshot().unwrap();
        assert_eq!(wal.position(), 0);
        assert_eq!(wal.last_lsn(), 2, "history survives truncation");
        wal.append_insert(3).unwrap();
        drop(wal);
        let found = scan(&path).unwrap();
        assert_eq!(found.records.len(), 1);
        assert_eq!(found.records[0].lsn, 3);
    }

    #[test]
    fn every_n_policy_syncs_once_per_group() {
        let path = tmp("groups");
        let _g = Cleanup(path.clone());
        let mut wal = Wal::create(&path, WalSyncPolicy::EveryN(4)).unwrap();
        for i in 0..8u64 {
            wal.append_insert(i).unwrap();
        }
        assert_eq!(wal.sync_count(), 2, "8 records / groups of 4");
        wal.append_insert(8).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.sync_count(), 3);
        wal.sync().unwrap();
        assert_eq!(wal.sync_count(), 3, "sync with nothing unsynced is a no-op");
    }

    #[test]
    fn zero_length_batches_round_trip() {
        let path = tmp("empty-batch");
        let _g = Cleanup(path.clone());
        let mut wal = Wal::create(&path, WalSyncPolicy::PerRecord).unwrap();
        wal.append_batch(&[]).unwrap();
        drop(wal);
        let found = scan(&path).unwrap();
        assert_eq!(found.records.len(), 1);
        assert_eq!(found.records[0].op, WalOp::InsertBatch(vec![]));
    }
}
