//! The sharded concurrent write path: N [`WritableShard`]s behind an
//! `Arc`-swapped topology, with dynamic rebalancing.
//!
//! # Architecture
//!
//! A [`ShardedWritable`] owns an immutable **topology** — the ownership
//! boundary keys, a [`ShardRouter`] fitted over them, and one
//! [`WritableShard`] per ownership range — behind
//! `RwLock<Arc<Topology>>`:
//!
//! * **Inserts** take the topology *read* lock (so many writers run
//!   concurrently), route the key to its owner shard with
//!   [`ShardRouter::route_owner`], and insert there; each shard
//!   serializes its own writes and runs its own Appendix-D.1
//!   buffer-merge-retrain cycle independently.
//! * **Snapshots** ([`ShardedWritable::snapshot`]) also take the read
//!   lock, clone the router and capture one [`DeltaSnapshot`] per shard
//!   — a consistent router + snapshot-vector *pair* from a single
//!   topology. All subsequent reads on the [`ShardedSnapshot`] are
//!   lock-free.
//! * **Rebalancing** takes the topology *write* lock: with all inserts
//!   excluded, a hot shard is split at its balanced
//!   [`li_index::partition::split_point`] (handing the upper half of
//!   its keys to a new sibling), or two cold neighbors are merged; the
//!   boundary vector is updated, the router refitted, and the whole
//!   topology published as one new `Arc`. A snapshot therefore always
//!   observes a *pre-* or *post-*rebalance topology, never a torn
//!   mixture — the property the stress and property suites pin down.
//!
//! # Ownership invariant
//!
//! Shard `s` holds exactly the keys in `[bounds[s-1], bounds[s])` (see
//! `li_index::partition::route_owner_binary` for the composition
//! proof). Inserts preserve it because routing picks the owner; splits
//! and merges preserve it because they only subdivide or concatenate
//! ownership ranges. It is what makes every global query — `contains`,
//! `rank`, `range_keys` — a one-shard (plus O(1) bookkeeping) affair,
//! and what keeps cross-shard concatenation globally sorted.
//!
//! # Tiered write path
//!
//! With [`ShardedWritableConfig::max_runs`] `> 0` every shard runs the
//! LSM-style tiered cycle instead of merge-at-threshold: a full buffer
//! is *sealed* into an immutable [`li_core::SortedRun`] (O(buffer), no
//! base retrain), and once `max_runs` runs stack up the shard is
//! *compacted* — all runs folded into the base with ONE retrain. The
//! insert that fills a run stack never compacts inline while a
//! [`crate::RebalanceWorker`] is attached; it only signals, and the
//! worker folds the stack off the insert path (with no worker
//! attached, the insert compacts inline — the same owner-driven
//! fallback as inline rebalancing).
//!
//! # Per-shard retuning
//!
//! Every shard (re)build sizes its RMI leaf count from the shard's
//! actual key count (`leaf_fraction`), then *retunes* through the same
//! loop the read path's `RmiShardBuilder::with_retune` uses: while the
//! trained base's error stats exceed the configured
//! [`RetunePolicy`], the build retries with doubled leaf density — so
//! a skewed key region gets a denser model instead of a permanently
//! mispredicting one. Between rebuilds, a shard whose region turned
//! hot anyway is caught by the error-triggered split in
//! [`crate::rebalance::plan`].

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use li_core::delta::{DeltaIndex, DeltaSnapshot};
use li_core::rmi::{RmiConfig, TopModel};
use li_index::partition::{boundaries, even_offsets, split_point};
use li_index::KeyStore;
use li_obs::MetricsSnapshot;

use crate::builder::{retune_rmi, RetunePolicy};
use crate::obs::{events, ServeMetrics};
use crate::persist::PersistError;
use crate::rebalance::{plan, RebalanceAction, RebalanceConfig};
use crate::rebalance_worker::WorkerLink;
use crate::router::ShardRouter;
use crate::select::{train_selected, Backend};
use crate::wal::{self, Wal, WalOp, WalSyncPolicy};
use crate::writable::WritableShard;

/// Configuration of a [`ShardedWritable`].
///
/// # Examples
/// ```
/// use li_serve::{RebalanceConfig, ShardedWritable, ShardedWritableConfig};
///
/// let config = ShardedWritableConfig {
///     merge_threshold: 256, // buffered inserts per shard between retrains
///     check_interval: 512,  // periodic rebalance scan cadence
///     rebalance: RebalanceConfig {
///         max_shard_len: 4096, // split a shard beyond this
///         merge_max_len: 1024, // merge neighbors at/below this combined
///         ..RebalanceConfig::default()
///     },
///     ..ShardedWritableConfig::default()
/// };
/// let sw = ShardedWritable::new((0..10_000u64).collect::<Vec<_>>(), 4, config);
/// assert_eq!(sw.shard_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedWritableConfig {
    /// Per-shard delta-buffer capacity between merge+retrain cycles.
    pub merge_threshold: usize,
    /// RMI leaf models per key when (re)building a shard (min 1 leaf).
    pub leaf_fraction: f64,
    /// Per-shard retuning on every shard (re)build — the same policy
    /// vocabulary (and the same loop) as
    /// [`crate::builder::RmiShardBuilder::with_retune`].
    pub retune: RetunePolicy,
    /// Run a full rebalance scan every this many successful inserts
    /// (in addition to the immediate check when an insert pushes its
    /// shard over the split threshold). `0` disables periodic scans.
    pub check_interval: usize,
    /// LSM-style tiering bound: `0` (the default) keeps the classic
    /// merge-at-threshold write path; `> 0` makes every shard seal a
    /// full buffer into an immutable sorted run (O(buffer), no base
    /// retrain) and schedules a compaction — all runs folded into the
    /// base with ONE retrain — once this many runs have stacked up.
    /// Compaction runs on the attached [`crate::RebalanceWorker`] when
    /// there is one, inline otherwise.
    pub max_runs: usize,
    /// How every shard (re)build trains its base (default
    /// [`Backend::Rmi`] — the retuned RMI, exactly the pre-adaptive
    /// behavior). [`Backend::Auto`] re-runs the adaptive grid search
    /// (`crate::select`) on every shard build, split, merge and
    /// compaction, so each shard's backend family follows its own
    /// drifting key distribution; [`Backend::BTree`] pins every shard
    /// to the all-B-Tree-leaf hybrid. The write tier's delta base must
    /// stay an RMI structurally, so `Interp`/`Fast` are rejected by
    /// validation here (they remain read-tier backends).
    pub backend: Backend,
    /// Hot-path observability (default `true`): count every insert and
    /// latency-sample 1-in-N of them into the structure's
    /// [`ServeMetrics`]. `false` strips the per-op instrumentation from
    /// the insert fast path (one branch remains) — the `repro stats`
    /// overhead benchmark compares the two. Structural metrics (splits,
    /// merges, compactions, WAL and worker activity) record regardless:
    /// they are cold-path and double as the structure's own counters.
    pub observe: bool,
    /// Split/merge thresholds.
    pub rebalance: RebalanceConfig,
}

impl Default for ShardedWritableConfig {
    fn default() -> Self {
        Self {
            merge_threshold: 1024,
            leaf_fraction: 1.0 / 200.0,
            retune: RetunePolicy::default(),
            check_interval: 1024,
            max_runs: 0,
            backend: Backend::Rmi,
            observe: true,
            rebalance: RebalanceConfig::default(),
        }
    }
}

impl ShardedWritableConfig {
    fn validate(&self) {
        assert!(self.merge_threshold > 0, "merge_threshold must be > 0");
        assert!(
            self.leaf_fraction > 0.0 && self.leaf_fraction.is_finite(),
            "leaf_fraction must be positive and finite"
        );
        assert!(
            self.retune.max_mean_err >= 0.0 && self.retune.max_mean_err.is_finite(),
            "retune.max_mean_err must be finite and >= 0"
        );
        assert!(
            matches!(self.backend, Backend::Auto | Backend::Rmi | Backend::BTree),
            "the write tier's delta base must be an RMI (plain or hybrid): \
             backend must be Auto, Rmi or BTree"
        );
        self.rebalance.validate();
    }
}

/// One immutable shard topology: ownership bounds, the router fitted
/// over them, and the shard handles. Published atomically as a whole —
/// readers and writers always see bounds, router and shards that agree.
#[derive(Debug)]
struct Topology {
    /// Ownership-range lower bounds of shards `1..N` (sorted).
    bounds: Vec<u64>,
    router: ShardRouter,
    shards: Vec<Arc<WritableShard>>,
    /// Bumped on every rebalance publication.
    generation: u64,
}

/// A fully sharded concurrent write path: concurrent inserts routed by
/// key ownership, lock-free snapshot reads, and dynamic shard
/// rebalancing with per-shard model retuning. See the module docs (and
/// `ARCHITECTURE.md` at the repository root) for the architecture.
///
/// Rebalancing runs in one of two modes:
///
/// * **Inline** (the default): the insert that pushes a shard over its
///   threshold — or that crosses the periodic scan cadence — runs
///   [`ShardedWritable::rebalance`] itself, paying the shard-rebuild
///   latency under the topology write lock.
/// * **Background**: with a [`crate::RebalanceWorker`] attached,
///   inserts only record pressure into lock-free counters and signal
///   the worker; splits and merges are rebuilt *off* the insert path
///   and published under a brief write lock (see
///   `rebalance_step_background`).
///
/// # Examples
/// ```
/// use li_serve::{ShardedWritable, ShardedWritableConfig};
///
/// let data: Vec<u64> = (0..1000u64).collect();
/// let sw = ShardedWritable::new(data, 4, ShardedWritableConfig::default());
/// assert!(sw.insert(5000));
///
/// // The batched write path: one topology-lock acquisition, one lock
/// // handoff per touched shard, per-key newly-inserted flags back.
/// let flags = sw.insert_batch(&[5000, 6000, 6000]);
/// assert_eq!(flags, vec![false, true, false]);
///
/// // Reads compose over a consistent lock-free snapshot.
/// let snap = sw.snapshot();
/// assert_eq!(snap.len(), 1002);
/// assert!(snap.contains(6000));
/// assert_eq!(snap.rank(1000), 1000);
/// ```
#[derive(Debug)]
pub struct ShardedWritable {
    topo: RwLock<Arc<Topology>>,
    config: ShardedWritableConfig,
    /// Successful (key-adding) inserts, for the periodic rebalance
    /// scan. Kept as a plain global atomic (not an `li-obs` striped
    /// counter) because the scan trigger needs an exact before/after
    /// pair from one `fetch_add` — control logic, not telemetry.
    inserts: AtomicUsize,
    /// The observability bundle: op counters, latency histograms, the
    /// structural-event ring, and the **single source of truth** for
    /// the split/merge/compaction counters behind
    /// [`ShardedWritable::splits`] and friends. Shared (via `Arc`
    /// clones) with every shard, the WAL and the background worker.
    obs: Arc<ServeMetrics>,
    /// Link to an attached background rebalance worker. `None` (the
    /// default) means inserts rebalance inline; `Some` means inserts
    /// only record pressure and signal — the worker owns rebalancing.
    worker: RwLock<Option<Arc<WorkerLink>>>,
    /// The attached write-ahead log, when this structure is durable
    /// (see [`ShardedWritable::enable_wal`] /
    /// [`ShardedWritable::recover`]). Writers hold this mutex across
    /// *append + in-memory apply* and `save` holds it across *cut +
    /// publish + truncate*, so the snapshot LSN provably bounds the
    /// cut — the lock order (WAL mutex, then topology lock) is the
    /// same everywhere.
    wal: Mutex<Option<Wal>>,
    /// Fast-path flag mirroring `wal.is_some()`: the non-durable
    /// insert path stays exactly as lock-free as before a WAL existed
    /// (one relaxed-ish atomic load, no mutex touched).
    durable: AtomicBool,
}

impl ShardedWritable {
    /// Build over initial sorted unique `data`, range-partitioned into
    /// `shards` balanced shards (clamped to at least 1 and at most one
    /// shard per key; the rebalancer grows the topology as load
    /// arrives). The initial partition is zero-copy: every shard's base
    /// is a [`KeyStore::slice`] of the caller's allocation.
    pub fn new(data: impl Into<KeyStore>, shards: usize, config: ShardedWritableConfig) -> Self {
        config.validate();
        let obs = Arc::new(ServeMetrics::new());
        let store: KeyStore = data.into();
        let n = shards.clamp(1, store.len().max(1));
        let offsets = even_offsets(store.len(), n);
        let bounds = boundaries(&store, &offsets);
        let shard_vec: Vec<Arc<WritableShard>> = offsets
            .windows(2)
            .map(|w| Arc::new(build_retuned_shard(store.slice(w[0]..w[1]), &config, &obs)))
            .collect();
        let router = ShardRouter::fit(bounds.clone());
        Self {
            topo: RwLock::new(Arc::new(Topology {
                bounds,
                router,
                shards: shard_vec,
                generation: 0,
            })),
            config,
            inserts: AtomicUsize::new(0),
            obs,
            worker: RwLock::new(None),
            wal: Mutex::new(None),
            durable: AtomicBool::new(false),
        }
    }

    /// Insert a key, returning whether it was newly inserted (`false`
    /// for duplicates). Routes to the owner shard under the topology
    /// read lock — concurrent inserts to different shards proceed in
    /// parallel. When the owner runs hot or the periodic scan comes
    /// due, either rebalances inline or (with a
    /// [`crate::RebalanceWorker`] attached) signals the background
    /// worker.
    ///
    /// With a WAL attached the key is logged **before** it touches the
    /// in-memory tiers. This signature stays infallible: a WAL I/O
    /// failure is *latched* (the write is still applied and
    /// acknowledged in memory, but is no longer durable) and surfaces
    /// on the next [`ShardedWritable::try_insert`],
    /// [`ShardedWritable::wal_sync`] or via
    /// [`ShardedWritable::wal_failure`] — the same window group commit
    /// already leaves open between sync points. Durable pipelines that
    /// must not acknowledge non-durable writes use
    /// [`ShardedWritable::try_insert`].
    pub fn insert(&self, key: u64) -> bool {
        // Observability: count every insert and decide the 1-in-N
        // latency sample with ONE relaxed striped add (`incr_sampled`),
        // so the two `Instant::now` calls never dominate the hot path
        // (see `crate::obs`).
        if self.config.observe && self.obs.inserts.incr_sampled(crate::obs::INSERT_SAMPLE) {
            let t = Instant::now();
            let r = self.insert_logged(key);
            self.obs.insert_ns.record_since(t);
            return r;
        }
        self.insert_logged(key)
    }

    /// The WAL-then-memory insert body behind [`ShardedWritable::insert`].
    fn insert_logged(&self, key: u64) -> bool {
        if self.durable.load(Ordering::Acquire) {
            let mut slot = self.wal.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(w) = slot.as_mut() {
                // Failure latched inside the Wal; see the doc above.
                let _ = w.append_insert(key);
                if self.config.observe {
                    self.obs.durable_inserts.incr();
                }
                return self.insert_unlogged(key);
            }
        }
        self.insert_unlogged(key)
    }

    /// [`ShardedWritable::insert`] with WAL errors surfaced instead of
    /// latched: the write is applied (and acknowledged) only after its
    /// record is accepted by the log, so an `Err` means the key was
    /// **not** inserted. Identical to `insert` when no WAL is attached.
    pub fn try_insert(&self, key: u64) -> Result<bool, PersistError> {
        if self.config.observe {
            self.obs.inserts.incr();
        }
        if self.durable.load(Ordering::Acquire) {
            let mut slot = self.wal.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(w) = slot.as_mut() {
                w.append_insert(key)?;
                if self.config.observe {
                    self.obs.durable_inserts.incr();
                }
                return Ok(self.insert_unlogged(key));
            }
        }
        Ok(self.insert_unlogged(key))
    }

    /// The WAL-free insert body shared by every write path (and used
    /// directly by recovery replay, which must not re-log records).
    fn insert_unlogged(&self, key: u64) -> bool {
        let obs = {
            // The read *guard* (not just the topology Arc) must live
            // across the shard insert: it is what excludes a concurrent
            // rebalance from exporting this shard's keys and publishing
            // a replacement topology while the key lands in the old,
            // about-to-be-discarded shard — a silently lost insert.
            let guard = self.topo.read().unwrap_or_else(|e| e.into_inner());
            let s = guard.router.route_owner(key);
            guard.shards[s].insert_observed(key)
            // Guard drops here, before any inline rebalance or
            // compaction takes further locks.
        };
        if obs.inserted || obs.needs_compaction {
            self.note_inserts(
                usize::from(obs.inserted),
                if obs.inserted { obs.len } else { 0 },
                obs.needs_compaction,
            );
        }
        obs.inserted
    }

    /// Insert a whole batch, returning one newly-inserted flag per key
    /// in input order (`false` for keys already present and for the
    /// second and later occurrences of a key duplicated within the
    /// batch — exactly the flags N scalar [`ShardedWritable::insert`]
    /// calls would return).
    ///
    /// The batch is bucketed per owner shard (mirroring the read path's
    /// `lower_bound_batch` plan): the topology read lock is taken
    /// **once** for the whole batch, and each touched shard gets **one**
    /// write-lock handoff and at most one merge+retrain, instead of one
    /// of each per key. Rebalance pressure is accounted once at the
    /// end, so a batch triggers at most one inline rebalance (or one
    /// worker signal).
    ///
    /// With a WAL attached the whole batch is logged as **one atomic
    /// record** before any key touches the in-memory tiers (same
    /// latched-failure semantics as [`ShardedWritable::insert`];
    /// [`ShardedWritable::try_insert_batch`] surfaces errors instead).
    ///
    /// # Examples
    /// ```
    /// use li_serve::{ShardedWritable, ShardedWritableConfig};
    ///
    /// let sw = ShardedWritable::new(vec![10u64, 20, 30], 2, ShardedWritableConfig::default());
    /// let flags = sw.insert_batch(&[5, 20, 25, 5]);
    /// assert_eq!(flags, vec![true, false, true, false]);
    /// assert_eq!(sw.len(), 5);
    /// ```
    pub fn insert_batch(&self, keys: &[u64]) -> Vec<bool> {
        // One timer pair amortized over the whole batch: count every
        // key, record the per-key average latency.
        if self.config.observe && !keys.is_empty() {
            self.obs.batch_inserts.add(keys.len() as u64);
            let t = Instant::now();
            let flags = self.insert_batch_logged(keys);
            let per_key = t.elapsed().as_nanos() as u64 / keys.len() as u64;
            self.obs.batch_insert_ns.record(per_key);
            return flags;
        }
        self.insert_batch_logged(keys)
    }

    /// The WAL-then-memory batch body behind
    /// [`ShardedWritable::insert_batch`].
    fn insert_batch_logged(&self, keys: &[u64]) -> Vec<bool> {
        if self.durable.load(Ordering::Acquire) && !keys.is_empty() {
            let mut slot = self.wal.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(w) = slot.as_mut() {
                let _ = w.append_batch(keys); // failure latched inside
                if self.config.observe {
                    self.obs.durable_inserts.add(keys.len() as u64);
                }
                return self.insert_batch_unlogged(keys);
            }
        }
        self.insert_batch_unlogged(keys)
    }

    /// [`ShardedWritable::insert_batch`] with WAL errors surfaced
    /// instead of latched: on `Err` **no key of the batch** was
    /// applied (the batch record is all-or-nothing in the log, so the
    /// in-memory apply is too). Identical to `insert_batch` when no
    /// WAL is attached.
    pub fn try_insert_batch(&self, keys: &[u64]) -> Result<Vec<bool>, PersistError> {
        if self.config.observe && !keys.is_empty() {
            self.obs.batch_inserts.add(keys.len() as u64);
        }
        if self.durable.load(Ordering::Acquire) && !keys.is_empty() {
            let mut slot = self.wal.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(w) = slot.as_mut() {
                w.append_batch(keys)?;
                if self.config.observe {
                    self.obs.durable_inserts.add(keys.len() as u64);
                }
                return Ok(self.insert_batch_unlogged(keys));
            }
        }
        Ok(self.insert_batch_unlogged(keys))
    }

    /// The WAL-free batch body shared by every write path (recovery
    /// replay uses it directly — replayed records must not re-log).
    fn insert_batch_unlogged(&self, keys: &[u64]) -> Vec<bool> {
        let mut flags = vec![false; keys.len()];
        if keys.is_empty() {
            return flags;
        }
        let (newly, max_owner_len, compaction_due) = {
            // Same guard discipline as `insert`: hold the read lock
            // across every shard handoff so no rebalance can swap the
            // topology mid-batch.
            let guard = self.topo.read().unwrap_or_else(|e| e.into_inner());
            let n = guard.shards.len();
            let mut newly = 0usize;
            let mut max_owner_len = 0usize;
            let mut compaction_due = false;
            if n == 1 {
                let (shard_flags, obs) = guard.shards[0].insert_batch_observed(keys);
                flags = shard_flags;
                newly = flags.iter().filter(|&&f| f).count();
                if newly > 0 {
                    max_owner_len = obs.len;
                }
                compaction_due = obs.needs_compaction;
            } else {
                // Bucket per owner shard, remembering each key's slot
                // so the flags scatter back in input order.
                let mut bucket_keys: Vec<Vec<u64>> = vec![Vec::new(); n];
                let mut bucket_slots: Vec<Vec<usize>> = vec![Vec::new(); n];
                for (slot, &k) in keys.iter().enumerate() {
                    let s = guard.router.route_owner(k);
                    bucket_keys[s].push(k);
                    bucket_slots[s].push(slot);
                }
                for ((bkeys, bslots), shard) in bucket_keys
                    .iter()
                    .zip(&bucket_slots)
                    .zip(guard.shards.iter())
                {
                    if bkeys.is_empty() {
                        continue;
                    }
                    let (shard_flags, obs) = shard.insert_batch_observed(bkeys);
                    let added = shard_flags.iter().filter(|&&f| f).count();
                    if added > 0 {
                        newly += added;
                        max_owner_len = max_owner_len.max(obs.len);
                    }
                    compaction_due |= obs.needs_compaction;
                    for (&slot, &f) in bslots.iter().zip(&shard_flags) {
                        flags[slot] = f;
                    }
                }
            }
            (newly, max_owner_len, compaction_due)
        };
        if newly > 0 || compaction_due {
            self.note_inserts(newly, max_owner_len, compaction_due);
        }
        flags
    }

    /// Shared post-insert accounting for the scalar and batched write
    /// paths: bump the global insert counter, then either record
    /// pressure on the attached background worker's lock-free board
    /// (signaling it when a shard ran hot, a run stack filled, or the
    /// periodic scan cadence was crossed) or run the inline rebalancer
    /// and compactor for the same triggers.
    fn note_inserts(&self, newly: usize, max_owner_len: usize, compaction_due: bool) {
        let before = self.inserts.fetch_add(newly, Ordering::Relaxed);
        let after = before + newly;
        let owner_hot = max_owner_len > self.config.rebalance.max_shard_len;
        let periodic = self.config.check_interval > 0
            && before / self.config.check_interval != after / self.config.check_interval;
        // Poison-tolerant: the slot is a plain Option pointer, valid
        // even if a panicking thread died while holding the lock.
        if let Some(link) = self
            .worker
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
        {
            link.record(newly, max_owner_len, owner_hot);
            if owner_hot || periodic || compaction_due {
                link.signal();
            }
            return;
        }
        if compaction_due {
            self.compact_pending();
        }
        if owner_hot || periodic {
            self.rebalance();
        }
    }

    /// Compact every shard whose run stack is at its tiering bound:
    /// each one's base is retrained ONCE over base + runs with no
    /// topology lock held (only the shard's own brief read/write locks
    /// — see [`WritableShard::compact`]), so concurrent inserts and
    /// snapshots keep flowing. Returns `(shards compacted, runs
    /// folded)`. This is the single compaction entry point for both
    /// modes — the attached [`crate::RebalanceWorker`] calls it on its
    /// passes, the insert path calls it inline when no worker is
    /// attached — so the global [`ShardedWritable::compactions`]
    /// counter accounts every compaction exactly once.
    pub(crate) fn compact_pending(&self) -> (usize, usize) {
        // The Arc (not the guard) suffices: compaction never touches
        // the topology, and a shard orphaned by a concurrent rebalance
        // is merely wasted work, never lost keys.
        let topo = self.read_topo();
        let mut compacted = 0usize;
        let mut folded = 0usize;
        for shard in topo.shards.iter() {
            if shard.needs_compaction() {
                // Under Backend::Auto a compaction is also a
                // re-decision point: the fold retrains the base anyway,
                // so the selector gets to change the shard's backend
                // family for free (drifted-hard shards go hybrid,
                // smoothed-out shards go back to a plain RMI).
                let (runs, selection) = match self.config.backend {
                    Backend::Auto => {
                        shard.compact_selected(self.config.leaf_fraction, &self.config.retune)
                    }
                    _ => (shard.compact(), None),
                };
                if runs > 0 {
                    compacted += 1;
                    folded += runs;
                    self.obs.compactions.incr();
                    self.obs.runs_compacted.add(runs as u64);
                    self.obs
                        .event(events::COMPACT_FOLD, runs as u64, shard.len() as u64);
                    if let Some((choice, switched)) = selection {
                        self.obs.backend_selections.incr();
                        self.obs
                            .event(events::BACKEND_SELECT, choice.code(), shard.len() as u64);
                        if switched {
                            self.obs.backend_switches.incr();
                        }
                    }
                }
            }
        }
        (compacted, folded)
    }

    /// Attach a background worker's link: from now on inserts record
    /// pressure and signal instead of rebalancing inline. Panics if a
    /// worker is already attached.
    pub(crate) fn attach_worker(&self, link: Arc<WorkerLink>) {
        let mut slot = self.worker.write().unwrap_or_else(|e| e.into_inner());
        if slot.is_some() {
            // Release (don't poison) the lock before panicking, so the
            // existing worker's Drop can still detach cleanly.
            drop(slot);
            panic!("a RebalanceWorker is already attached to this ShardedWritable");
        }
        *slot = Some(link);
    }

    /// Detach the background worker's link: inserts rebalance inline
    /// again. Runs from `RebalanceWorker::drop`, so it must never
    /// panic (poison-tolerant).
    pub(crate) fn detach_worker(&self) {
        *self.worker.write().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Whether a background rebalance worker currently owns
    /// rebalancing (inserts then only record pressure and signal).
    pub fn has_background_worker(&self) -> bool {
        self.worker
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Whether `key` currently exists (owner-shard probe).
    pub fn contains(&self, key: u64) -> bool {
        let topo = self.read_topo();
        let s = topo.router.route_owner(key);
        topo.shards[s].contains(key)
    }

    /// Total keys across all shards. Each shard's count is read
    /// consistently; under concurrent inserts the sum is a moment-close
    /// approximation — take a [`ShardedWritable::snapshot`] for a
    /// single-topology consistent view.
    pub fn len(&self) -> usize {
        self.read_topo().shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the structure holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of keys `< key` (consistent snapshot rank).
    pub fn rank(&self, key: u64) -> usize {
        self.snapshot().rank(key)
    }

    /// All keys in `[lo, hi)`, sorted (consistent snapshot scan).
    pub fn range_keys(&self, lo: u64, hi: u64) -> Vec<u64> {
        self.snapshot().range_keys(lo, hi)
    }

    /// Current shard count.
    pub fn shard_count(&self) -> usize {
        self.read_topo().shards.len()
    }

    /// Current per-shard key counts (diagnostics and tests).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.read_topo().shards.iter().map(|s| s.len()).collect()
    }

    /// Current ownership boundary keys (one per shard beyond the
    /// first).
    pub fn bounds(&self) -> Vec<u64> {
        self.read_topo().bounds.clone()
    }

    /// Topology generation: bumped on every published rebalance.
    pub fn generation(&self) -> u64 {
        self.read_topo().generation
    }

    /// The structure's observability bundle — shared (by `Arc` clone)
    /// with its shards, WAL and background worker. Hand it to a
    /// [`crate::ShardedIndex::attach_metrics`] to fold a read-only
    /// structure's lookups into the same registry, or walk it directly
    /// for typed access to individual counters and histograms.
    pub fn metrics_handle(&self) -> &Arc<ServeMetrics> {
        &self.obs
    }

    /// A consistent point-in-time [`MetricsSnapshot`] of every op
    /// counter, latency histogram, gauge and the structural-event tail.
    ///
    /// The per-shard gauge sets (`li_shard_len{shard="i"}`,
    /// `li_shard_runs`, `li_shard_pending`) and the topology gauges are
    /// refreshed under the topology read lock, and the registry is
    /// snapshotted **while that guard is held** — so the gauges always
    /// describe the same topology generation the snapshot reports.
    ///
    /// # Examples
    /// ```
    /// use li_serve::{ShardedWritable, ShardedWritableConfig};
    ///
    /// let sw = ShardedWritable::new(vec![1u64, 2, 3], 2, ShardedWritableConfig::default());
    /// sw.insert(10);
    /// let snap = sw.metrics();
    /// assert_eq!(snap.counter("li_inserts_total"), Some(1));
    /// assert_eq!(snap.gauge("li_shard_count"), Some(2));
    /// assert!(snap.render_text().contains("li_shard_len{shard=\"0\"}"));
    /// ```
    pub fn metrics(&self) -> MetricsSnapshot {
        let guard = self.topo.read().unwrap_or_else(|e| e.into_inner());
        let lens: Vec<u64> = guard.shards.iter().map(|s| s.len() as u64).collect();
        let runs: Vec<u64> = guard.shards.iter().map(|s| s.run_count() as u64).collect();
        let pending: Vec<u64> = guard.shards.iter().map(|s| s.pending() as u64).collect();
        self.obs.shard_len.set_all(&lens);
        self.obs.shard_runs.set_all(&runs);
        self.obs.shard_pending.set_all(&pending);
        self.obs.shard_count.set(guard.shards.len() as i64);
        self.obs.generation.set(guard.generation as i64);
        self.obs.registry().snapshot()
    }

    /// The Prometheus-style text exposition of
    /// [`ShardedWritable::metrics`] (counters, gauges, summary
    /// quantiles per histogram, and the event tail as comments).
    pub fn render_text(&self) -> String {
        self.metrics().render_text()
    }

    /// How many shard splits have been applied. A thin read of the
    /// metrics registry's `li_shard_splits_total` counter — the single
    /// source of truth both this accessor and
    /// [`ShardedWritable::metrics`] report from, so they can never
    /// drift apart.
    pub fn splits(&self) -> usize {
        self.obs.splits.value() as usize
    }

    /// How many shard merges have been applied (thin read of
    /// `li_shard_merges_total`; see [`ShardedWritable::splits`]).
    pub fn shard_merges(&self) -> usize {
        self.obs.shard_merges.value() as usize
    }

    /// How many run-stack compactions have been applied (shards whose
    /// sealed runs were folded into the base with one retrain). Always
    /// `0` when `max_runs == 0`. While a [`crate::RebalanceWorker`] is
    /// attached, every compaction happens on the worker, so this equals
    /// the worker's own compaction counter. (Thin read of
    /// `li_compactions_total`; see [`ShardedWritable::splits`].)
    pub fn compactions(&self) -> usize {
        self.obs.compactions.value() as usize
    }

    /// How many adaptive backend selections have run (thin read of
    /// `li_backend_selections_total`). Under [`Backend::Auto`] every
    /// shard (re)build — initial construction, each half of a split,
    /// each merge, each compaction fold — runs exactly one selection;
    /// under a pinned backend this stays 0.
    pub fn backend_selections(&self) -> usize {
        self.obs.backend_selections.value() as usize
    }

    /// How many of those selections *changed* the shard's backend
    /// family from what it was before the rebuild (thin read of
    /// `li_backend_switches_total`).
    pub fn backend_switches(&self) -> usize {
        self.obs.backend_switches.value() as usize
    }

    /// How many shards currently serve from an all-B-Tree-leaf hybrid
    /// base (the write tier's tree family) rather than a plain RMI —
    /// the structural ground truth the selection counters are checked
    /// against in the stress suite.
    pub fn hybrid_shards(&self) -> usize {
        self.read_topo()
            .shards
            .iter()
            .filter(|s| s.is_hybrid())
            .count()
    }

    /// Sealed runs currently stacked across all shards, awaiting
    /// compaction.
    pub fn run_count(&self) -> usize {
        self.read_topo().shards.iter().map(|s| s.run_count()).sum()
    }

    /// Keys held in sealed runs across all shards (between the mutable
    /// buffers and the learned bases).
    pub fn sealed_keys(&self) -> usize {
        self.read_topo()
            .shards
            .iter()
            .map(|s| s.sealed_keys())
            .sum()
    }

    /// Keys waiting in delta buffers across all shards.
    pub fn pending(&self) -> usize {
        self.read_topo().shards.iter().map(|s| s.pending()).sum()
    }

    /// Force a delta merge + retrain on every shard now.
    pub fn merge_all(&self) {
        for shard in self.read_topo().shards.iter() {
            shard.merge();
        }
    }

    /// A consistent point-in-time view: the router and one
    /// [`DeltaSnapshot`] per shard, captured from a *single* topology
    /// (the topology read lock is held across the capture, so a
    /// concurrent rebalance can never hand this snapshot shards from
    /// two generations). All reads on the returned snapshot are
    /// lock-free.
    pub fn snapshot(&self) -> ShardedSnapshot {
        // Hold the read guard (not just the Arc) across the capture:
        // it excludes a concurrent rebalance, so the shard views below
        // all come from the topology the router describes.
        let topo = self.topo.read().unwrap_or_else(|e| e.into_inner());
        let snaps: Vec<DeltaSnapshot> = topo.shards.iter().map(|s| s.snapshot()).collect();
        let mut prefix = Vec::with_capacity(snaps.len() + 1);
        let mut at = 0usize;
        prefix.push(0);
        for s in &snaps {
            at += s.len();
            prefix.push(at);
        }
        ShardedSnapshot {
            router: topo.router.clone(),
            snaps,
            prefix,
            generation: topo.generation,
        }
    }

    /// Run the rebalancer until the topology is stable: repeatedly ask
    /// [`plan`] for the next action (split the hottest overloaded or
    /// mispredicting shard / merge the coldest adjacent pair), apply it
    /// under the topology write lock, and publish the new topology
    /// atomically. Returns the actions applied (empty when already
    /// stable).
    ///
    /// Safe to call from any thread at any time; inserts block only for
    /// the duration of the shard rebuilds actually performed.
    pub fn rebalance(&self) -> Vec<RebalanceAction> {
        let mut guard = self.topo.write().unwrap_or_else(|e| e.into_inner());
        let mut applied = Vec::new();
        // The hysteresis in `plan` prevents oscillation; the explicit
        // bound is a backstop so a policy bug cannot hold the write
        // lock forever.
        let budget = self.rebalance_budget();
        for _ in 0..budget {
            let topo = &**guard;
            let (lens, err_hot) = self.observe(topo);
            let Some(action) = plan(&lens, &err_hot, &self.config.rebalance) else {
                break;
            };
            let Some(next) = (match action {
                RebalanceAction::Split { shard } => self.apply_split(topo, shard),
                RebalanceAction::Merge { left } => Some(self.apply_merge(topo, left)),
            }) else {
                // Unsplittable in practice (e.g. a single giant
                // duplicate-free run shorter than 2 keys cannot occur,
                // but stay defensive): stop rather than spin.
                break;
            };
            *guard = Arc::new(next);
            self.note_rebalance(&action, &guard);
            applied.push(action);
        }
        applied
    }

    /// One **background** rebalance step, designed to be driven by a
    /// [`crate::RebalanceWorker`] so that inserts never pay shard
    /// rebuild latency:
    ///
    /// 1. **Observe** under the read lock: snapshot lens/error stats,
    ///    ask [`plan`] for the next action, remember the topology
    ///    generation. Inserts keep flowing.
    /// 2. **Rebuild off-lock**: export the affected shard(s) and
    ///    retrain the replacement(s) with *no* topology lock held —
    ///    writes racing into the old shard(s) keep landing there.
    /// 3. **Publish + drain** under a brief write lock: if the
    ///    generation still matches (else [`BackgroundStep::Raced`] —
    ///    the caller re-plans), diff each rebuilt shard's current
    ///    contents against its export and re-route the stragglers into
    ///    the replacement shards by the *new* topology's ownership
    ///    bounds, then swap in the new `Arc<Topology>`.
    ///
    /// The write lock is never held for the rebuild — that is the
    /// whole point of the background mode. When no writes raced in
    /// (shard lengths unchanged — the common case), the drain is a
    /// pair of O(1) length checks; otherwise it re-exports the touched
    /// shard for a linear diff plus the buffered straggler re-inserts.
    pub(crate) fn rebalance_step_background(&self) -> BackgroundStep {
        // Every phase below is timed into its own histogram
        // (`li_pass_*_ns`) unconditionally — this is the cold worker
        // path, where a pair of clock reads per phase is noise against
        // an export + retrain, and the phase breakdown is exactly the
        // tail-latency story the background mode exists to tell.

        // Phase 1 — observe (read lock, released immediately).
        let t_observe = Instant::now();
        let topo = self.read_topo();
        let (lens, err_hot) = self.observe(&topo);
        self.obs.pass_observe_ns.record_since(t_observe);
        let t_plan = Instant::now();
        let planned = plan(&lens, &err_hot, &self.config.rebalance);
        self.obs.pass_plan_ns.record_since(t_plan);
        let Some(action) = planned else {
            return BackgroundStep::Stable;
        };
        let gen0 = topo.generation;

        match action {
            RebalanceAction::Split { shard: s } => {
                // Phase 2 — rebuild off-lock. The export is kept (as a
                // zero-copy KeyStore the two halves slice) for the
                // phase-3 straggler diff.
                let t_retrain = Instant::now();
                let exported = KeyStore::new(topo.shards[s].export_keys());
                let Some(m) = split_point(exported.as_slice()) else {
                    // Fewer than two distinct keys: nothing to split.
                    return BackgroundStep::Stable;
                };
                let boundary = exported[m];
                let was_hybrid = Some(topo.shards[s].is_hybrid());
                let left =
                    build_selected_shard(exported.slice(0..m), &self.config, &self.obs, was_hybrid);
                let right = build_selected_shard(
                    exported.slice(m..exported.len()),
                    &self.config,
                    &self.obs,
                    was_hybrid,
                );
                self.obs.pass_retrain_ns.record_since(t_retrain);

                // Phase 3 — publish + drain.
                let t_publish = Instant::now();
                let mut guard = self.topo.write().unwrap_or_else(|e| e.into_inner());
                if guard.generation != gen0 {
                    return BackgroundStep::Raced;
                }
                // Writers are excluded now: whatever raced into the old
                // shard since the export is re-routed by the NEW
                // boundary (left owns [old_lo, boundary), right owns
                // [boundary, old_hi) — both subsets of the old range,
                // so every straggler has exactly one home). Keys are
                // never removed, so an unchanged length means nothing
                // raced in and the O(shard) re-export is skipped.
                if guard.shards[s].len() > exported.len() {
                    let t_drain = Instant::now();
                    for k in straggler_diff(&guard.shards[s].export_keys(), exported.as_slice()) {
                        let target = if k < boundary { &left } else { &right };
                        target.insert(k);
                    }
                    self.obs.pass_drain_ns.record_since(t_drain);
                }
                let next = split_topology(&guard, s, boundary, Arc::new(left), Arc::new(right));
                *guard = Arc::new(next);
                self.note_rebalance(&action, &guard);
                self.obs.pass_publish_ns.record_since(t_publish);
                BackgroundStep::Applied(action)
            }
            RebalanceAction::Merge { left: l } => {
                // Phase 2 — rebuild off-lock. Adjacent ownership ranges:
                // the concatenated exports are already globally sorted.
                let t_retrain = Instant::now();
                let mut keys = topo.shards[l].export_keys();
                let left_len = keys.len();
                keys.extend(topo.shards[l + 1].export_keys());
                let exported = KeyStore::new(keys);
                let merged = build_selected_shard(
                    exported.clone(),
                    &self.config,
                    &self.obs,
                    Some(topo.shards[l].is_hybrid()),
                );
                self.obs.pass_retrain_ns.record_since(t_retrain);

                // Phase 3 — publish + drain.
                let t_publish = Instant::now();
                let mut guard = self.topo.write().unwrap_or_else(|e| e.into_inner());
                if guard.generation != gen0 {
                    return BackgroundStep::Raced;
                }
                // Stragglers from either old shard belong to the merged
                // shard's (concatenated) ownership range. Same O(1)
                // unchanged-length skip as the split path, per shard.
                let (left_exp, right_exp) = exported.as_slice().split_at(left_len);
                if guard.shards[l].len() > left_exp.len()
                    || guard.shards[l + 1].len() > right_exp.len()
                {
                    let t_drain = Instant::now();
                    if guard.shards[l].len() > left_exp.len() {
                        for k in straggler_diff(&guard.shards[l].export_keys(), left_exp) {
                            merged.insert(k);
                        }
                    }
                    if guard.shards[l + 1].len() > right_exp.len() {
                        for k in straggler_diff(&guard.shards[l + 1].export_keys(), right_exp) {
                            merged.insert(k);
                        }
                    }
                    self.obs.pass_drain_ns.record_since(t_drain);
                }
                let next = merge_topology(&guard, l, Arc::new(merged));
                *guard = Arc::new(next);
                self.note_rebalance(&action, &guard);
                self.obs.pass_publish_ns.record_since(t_publish);
                BackgroundStep::Applied(action)
            }
        }
    }

    /// Account a just-published split or merge: bump the registry
    /// counter (the single source of truth behind
    /// [`ShardedWritable::splits`] / [`ShardedWritable::shard_merges`])
    /// and trace the event with the new generation and shard count.
    /// Called with the topology write guard still held, right after the
    /// `Arc` swap, so the payload describes exactly the published
    /// topology.
    fn note_rebalance(&self, action: &RebalanceAction, topo: &Topology) {
        let (generation, n) = (topo.generation, topo.shards.len() as u64);
        match action {
            RebalanceAction::Split { .. } => {
                self.obs.splits.incr();
                self.obs.event(events::SHARD_SPLIT, generation, n);
            }
            RebalanceAction::Merge { .. } => {
                self.obs.shard_merges.incr();
                self.obs.event(events::SHARD_MERGE, generation, n);
            }
        }
    }

    /// Per-shard observations the planner consumes: current lengths
    /// and the error-hot flags (when error splits are enabled).
    fn observe(&self, topo: &Topology) -> (Vec<usize>, Vec<bool>) {
        let lens: Vec<usize> = topo.shards.iter().map(|s| s.len()).collect();
        let err_hot: Vec<bool> = match self.config.rebalance.max_mean_err {
            Some(t) => topo
                .shards
                .iter()
                .map(|s| s.base_stats().mean_abs_err > t)
                .collect(),
            None => vec![false; lens.len()],
        };
        (lens, err_hot)
    }

    /// Backstop iteration bound for a rebalance pass (inline loop or
    /// one background worker pass): generous enough for any cascade the
    /// hysteresis admits, small enough that a policy bug cannot spin
    /// forever.
    pub(crate) fn rebalance_budget(&self) -> usize {
        2 * self.config.rebalance.max_shards + 4
    }

    /// Split shard `s` at its balanced split point: the upper half of
    /// its keys becomes a new sibling shard whose ownership range
    /// starts at the recomputed boundary key. `None` when the shard has
    /// no valid split point (fewer than two distinct keys). Runs under
    /// the topology write lock (the inline path — the background path
    /// rebuilds off-lock in `rebalance_step_background`).
    fn apply_split(&self, topo: &Topology, s: usize) -> Option<Topology> {
        let mut keys = topo.shards[s].export_keys();
        let m = split_point(&keys)?;
        let right_keys = keys.split_off(m);
        let boundary = right_keys[0];
        let was_hybrid = Some(topo.shards[s].is_hybrid());
        let left = Arc::new(build_selected_shard(
            keys,
            &self.config,
            &self.obs,
            was_hybrid,
        ));
        let right = Arc::new(build_selected_shard(
            right_keys,
            &self.config,
            &self.obs,
            was_hybrid,
        ));
        Some(split_topology(topo, s, boundary, left, right))
    }

    /// Merge shards `left` and `left + 1`. Their ownership ranges are
    /// adjacent, so concatenating their exports is already globally
    /// sorted. Runs under the topology write lock (the inline path).
    fn apply_merge(&self, topo: &Topology, left: usize) -> Topology {
        let mut keys = topo.shards[left].export_keys();
        keys.extend(topo.shards[left + 1].export_keys());
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "merge tore order");
        let merged = Arc::new(build_selected_shard(
            keys,
            &self.config,
            &self.obs,
            Some(topo.shards[left].is_hybrid()),
        ));
        merge_topology(topo, left, merged)
    }

    // Poison recovery (all `self.topo` lock sites): the only mutation
    // any code performs under the topology write lock is the final
    // `*guard = Arc::new(next)` — a pointer-sized swap of a *fully
    // constructed* replacement topology. Every fallible step (planning,
    // key export, shard retraining) runs before that assignment, so at
    // every possible panic point the published `Arc<Topology>` is
    // internally consistent. A poisoned flag therefore carries no
    // information about data validity here; recovering with
    // `into_inner` keeps readers and writers alive instead of turning
    // one panicking thread into a process-wide outage. (The `worker`
    // slot makes the same argument for its plain `Option` pointer.)
    fn read_topo(&self) -> Arc<Topology> {
        Arc::clone(&self.topo.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Everything the persistence layer needs, captured under one read
    /// guard so a concurrent rebalance cannot tear it: the ownership
    /// bounds plus each shard's (snapshot, retrain config, merge
    /// threshold) triple.
    pub(crate) fn persist_parts(&self) -> (Vec<u64>, Vec<(DeltaSnapshot, RmiConfig, usize)>) {
        let guard = self.topo.read().unwrap_or_else(|e| e.into_inner());
        let states = guard.shards.iter().map(|s| s.persist_state()).collect();
        (guard.bounds.clone(), states)
    }

    /// Reassemble a structure from loaded state: per-shard
    /// [`WritableShard`]s already populated with their trained bases
    /// and replayed deltas, plus the ownership bounds they were saved
    /// under. The router is refit over the bounds (a cheap O(shards)
    /// linear fit — not model retraining); counters restart at zero and
    /// the generation at 0, matching a fresh build.
    pub(crate) fn from_loaded(
        bounds: Vec<u64>,
        shards: Vec<Arc<WritableShard>>,
        config: ShardedWritableConfig,
    ) -> Self {
        config.validate();
        assert_eq!(bounds.len() + 1, shards.len(), "one bound per extra shard");
        let obs = Arc::new(ServeMetrics::new());
        for shard in &shards {
            shard.attach_obs(Arc::clone(&obs));
        }
        let router = ShardRouter::fit(bounds.clone());
        Self {
            topo: RwLock::new(Arc::new(Topology {
                bounds,
                router,
                shards,
                generation: 0,
            })),
            config,
            inserts: AtomicUsize::new(0),
            obs,
            worker: RwLock::new(None),
            wal: Mutex::new(None),
            durable: AtomicBool::new(false),
        }
    }

    /// The configuration this structure was built with.
    pub(crate) fn config(&self) -> &ShardedWritableConfig {
        &self.config
    }

    // -----------------------------------------------------------------
    // Durability: WAL attachment, checkpointing, recovery
    // -----------------------------------------------------------------

    /// The WAL slot, for the persistence layer's checkpoint protocol
    /// ([`ShardedWritable::save`] holds it across cut + publish +
    /// truncate).
    pub(crate) fn wal_slot(&self) -> &Mutex<Option<Wal>> {
        &self.wal
    }

    /// Attach a fresh write-ahead log at `wal_path`: every subsequent
    /// [`ShardedWritable::insert`] / [`ShardedWritable::insert_batch`]
    /// is logged **before** it touches the in-memory tiers, made
    /// durable per `policy`, and the log is truncated at every
    /// [`ShardedWritable::save`].
    ///
    /// The log starts empty and covers only writes made *after* this
    /// call — state already in memory is not logged. Callers with
    /// pre-existing state must therefore [`ShardedWritable::save`] a
    /// snapshot right after enabling (or build via
    /// [`ShardedWritable::recover`], which composes the two), or a
    /// crash before the first save recovers only the logged suffix.
    ///
    /// Errors if a WAL is already attached.
    pub fn enable_wal(
        &self,
        wal_path: impl AsRef<Path>,
        policy: WalSyncPolicy,
    ) -> Result<(), PersistError> {
        let mut slot = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_some() {
            return Err(PersistError::Format(
                "a WAL is already attached to this ShardedWritable".into(),
            ));
        }
        let mut w = Wal::create(wal_path, policy)?;
        w.set_obs(Arc::clone(&self.obs));
        *slot = Some(w);
        self.durable.store(true, Ordering::Release);
        Ok(())
    }

    /// Whether a WAL is attached (writes are being logged).
    pub fn wal_attached(&self) -> bool {
        self.durable.load(Ordering::Acquire)
    }

    /// Force a WAL sync point now: every write acknowledged so far
    /// becomes durable. A no-op without a WAL. Surfaces any latched
    /// append failure (see [`ShardedWritable::insert`]).
    pub fn wal_sync(&self) -> Result<(), PersistError> {
        let mut slot = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        match slot.as_mut() {
            Some(w) => Ok(w.sync()?),
            None => Ok(()),
        }
    }

    /// The WAL's latched failure, if an append or sync has failed
    /// since the last snapshot truncation (`None` = healthy or no WAL
    /// attached).
    pub fn wal_failure(&self) -> Option<String> {
        self.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .and_then(|w| w.failure().map(str::to_owned))
    }

    /// Highest LSN the WAL has assigned (0 without a WAL or before the
    /// first logged write).
    pub fn wal_last_lsn(&self) -> u64 {
        self.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map_or(0, |w| w.last_lsn())
    }

    /// Number of `fsync` sync points the WAL has issued (0 without a
    /// WAL) — the group-commit diagnostic `repro wal` reports per
    /// [`WalSyncPolicy`].
    pub fn wal_sync_count(&self) -> u64 {
        self.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map_or(0, |w| w.sync_count())
    }

    /// Recover a durable structure from its snapshot + WAL pair with
    /// the default configuration for first boots; see
    /// [`ShardedWritable::recover_with_config`] (which also returns
    /// the [`RecoveryReport`]) for the full contract.
    pub fn recover(
        snapshot_path: impl AsRef<Path>,
        wal_path: impl AsRef<Path>,
        policy: WalSyncPolicy,
    ) -> Result<Self, PersistError> {
        Self::recover_with_config(
            snapshot_path,
            wal_path,
            policy,
            ShardedWritableConfig::default(),
        )
        .map(|(sw, _report)| sw)
    }

    /// Recover a durable structure after a crash (or a clean
    /// shutdown — the protocol does not distinguish):
    ///
    /// 1. **Load the snapshot** at `snapshot_path` if one exists
    ///    (zero training, exactly [`ShardedWritable::load`]) and read
    ///    the snapshot LSN from its header. With no snapshot (first
    ///    boot, or a crash before the first save) start empty with
    ///    `config` — the passed `config` is used *only* in that case;
    ///    an existing snapshot carries its own.
    /// 2. **Scan the WAL** at `wal_path`: decode records up to the
    ///    first torn or checksum-failing one and truncate the invalid
    ///    tail (a missing file scans as an empty log).
    /// 3. **Replay** every record with `lsn > snapshot_lsn` through
    ///    the normal routed insert path (unlogged — replay must not
    ///    re-append). Inserts are idempotent, so records the snapshot
    ///    already covers (impossible by the LSN bound) or a previous
    ///    half-finished recovery already applied (possible — replay
    ///    mutates only memory) are harmless duplicates.
    /// 4. **Re-attach** the WAL for appending, positioned after the
    ///    valid prefix, with LSNs continuing from the last valid one.
    ///
    /// The result: exactly the acknowledged-durable write prefix
    /// survives. Recovery never panics on garbage log bytes and is
    /// idempotent — killed mid-replay and re-run, it produces the same
    /// state, because the only file mutation is the tail truncation
    /// (which only removes bytes the scan already refused to decode).
    pub fn recover_with_config(
        snapshot_path: impl AsRef<Path>,
        wal_path: impl AsRef<Path>,
        policy: WalSyncPolicy,
        config: ShardedWritableConfig,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        let snapshot_path = snapshot_path.as_ref();
        let (sw, snapshot_lsn, snapshot_loaded) = if snapshot_path.exists() {
            let (sw, lsn) = Self::load_with_lsn(snapshot_path)?;
            sw.obs.event(events::SNAPSHOT_LOAD, sw.len() as u64, lsn);
            (sw, lsn, true)
        } else {
            (Self::new(Vec::new(), 1, config), 0, false)
        };

        let found = wal::scan(wal_path.as_ref())?;
        let truncated_bytes = found.torn_bytes();
        let mut replayed = 0usize;
        let mut skipped = 0usize;
        for record in &found.records {
            if record.lsn <= snapshot_lsn {
                skipped += 1;
                continue;
            }
            match &record.op {
                WalOp::Insert(key) => {
                    sw.insert_unlogged(*key);
                }
                WalOp::InsertBatch(keys) => {
                    sw.insert_batch_unlogged(keys);
                }
            }
            replayed += 1;
        }

        let mut wal = Wal::open_after_recovery(wal_path.as_ref(), policy, &found, snapshot_lsn)?;
        wal.set_obs(Arc::clone(&sw.obs));
        sw.obs.wal_replayed.add(replayed as u64);
        sw.obs
            .event(events::RECOVERY_REPLAY, replayed as u64, truncated_bytes);
        let report = RecoveryReport {
            snapshot_loaded,
            snapshot_lsn,
            replayed,
            skipped,
            truncated_bytes,
            last_lsn: found.last_lsn.max(snapshot_lsn),
        };
        *sw.wal.lock().unwrap_or_else(|e| e.into_inner()) = Some(wal);
        sw.durable.store(true, Ordering::Release);
        Ok((sw, report))
    }
}

/// What [`ShardedWritable::recover_with_config`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot file existed and was loaded (false = first
    /// boot or crash-before-first-save: recovery started empty).
    pub snapshot_loaded: bool,
    /// The snapshot's LSN watermark — WAL records at or below it were
    /// already covered by the snapshot and skipped.
    pub snapshot_lsn: u64,
    /// Valid WAL records replayed into memory.
    pub replayed: usize,
    /// Valid WAL records skipped as already covered by the snapshot.
    pub skipped: usize,
    /// Torn/corrupt tail bytes truncated off the log.
    pub truncated_bytes: u64,
    /// The LSN the re-attached log continues from.
    pub last_lsn: u64,
}

/// Outcome of one [`ShardedWritable::rebalance_step_background`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BackgroundStep {
    /// An action was applied and a new topology published.
    Applied(RebalanceAction),
    /// The topology generation changed between observe and publish
    /// (e.g. a manual [`ShardedWritable::rebalance`] call won the
    /// race); the rebuild was discarded — observe again and re-plan.
    Raced,
    /// The policy proposes nothing: the topology is stable.
    Stable,
}

/// Keys in `now` but not in `then` — the writes that raced into a shard
/// while the background path was rebuilding it. Both inputs are sorted
/// unique, and `then ⊆ now` because inserts only ever add keys.
fn straggler_diff(now: &[u64], then: &[u64]) -> Vec<u64> {
    debug_assert!(now.len() >= then.len(), "shards never shrink mid-rebuild");
    let mut out = Vec::with_capacity(now.len() - then.len());
    let mut j = 0usize;
    for &k in now {
        if j < then.len() && then[j] == k {
            j += 1;
        } else {
            out.push(k);
        }
    }
    debug_assert_eq!(j, then.len(), "exported keys must persist in the shard");
    out
}

/// The topology after splitting shard `s` at `boundary` into `left` and
/// `right`: boundary vector grown, router refitted, generation bumped.
fn split_topology(
    topo: &Topology,
    s: usize,
    boundary: u64,
    left: Arc<WritableShard>,
    right: Arc<WritableShard>,
) -> Topology {
    let mut bounds = topo.bounds.clone();
    bounds.insert(s, boundary);
    let mut shards = topo.shards.clone();
    shards[s] = left;
    shards.insert(s + 1, right);
    Topology {
        router: ShardRouter::fit(bounds.clone()),
        bounds,
        shards,
        generation: topo.generation + 1,
    }
}

/// The topology after merging shards `left_idx` and `left_idx + 1` into
/// `merged`: boundary removed, router refitted, generation bumped.
fn merge_topology(topo: &Topology, left_idx: usize, merged: Arc<WritableShard>) -> Topology {
    let mut bounds = topo.bounds.clone();
    bounds.remove(left_idx);
    let mut shards = topo.shards.clone();
    shards[left_idx] = merged;
    shards.remove(left_idx + 1);
    Topology {
        router: ShardRouter::fit(bounds.clone()),
        bounds,
        shards,
        generation: topo.generation + 1,
    }
}

/// Build a shard over `keys` according to the configured
/// [`ShardedWritableConfig::backend`]:
///
/// * [`Backend::Rmi`] — the shared [`crate::builder::retune_rmi`] loop
///   sizes and densifies the model for this shard's actual keys
///   (exactly the pre-adaptive behavior);
/// * [`Backend::Auto`] — the adaptive selector
///   ([`crate::select::train_selected`]) probes, grid-searches and
///   materializes the winner, recording the decision as a
///   `li_backend_selections_total` increment plus a `backend_select`
///   event; when `prev_hybrid` carries the backend family the shard
///   had before this rebuild (splits, merges), a family change also
///   bumps `li_backend_switches_total`;
/// * [`Backend::BTree`] — every shard pinned to the all-B-Tree-leaf
///   hybrid at the reference page size.
///
/// Either way the shard keeps the chosen configuration for its future
/// delta merge retrains, so the decision sticks until the next rebuild.
fn build_retuned_shard(
    keys: impl Into<KeyStore>,
    config: &ShardedWritableConfig,
    obs: &Arc<ServeMetrics>,
) -> WritableShard {
    build_selected_shard(keys, config, obs, None)
}

/// [`build_retuned_shard`] with the pre-rebuild backend family (`None`
/// = fresh build, nothing to switch *from*).
fn build_selected_shard(
    keys: impl Into<KeyStore>,
    config: &ShardedWritableConfig,
    obs: &Arc<ServeMetrics>,
    prev_hybrid: Option<bool>,
) -> WritableShard {
    let keys: KeyStore = keys.into();
    let (rmi, cfg) = match config.backend {
        Backend::Auto => {
            let (rmi, cfg, choice) = train_selected(&keys, config.leaf_fraction, &config.retune);
            obs.backend_selections.incr();
            obs.event(events::BACKEND_SELECT, choice.code(), keys.len() as u64);
            if prev_hybrid.is_some_and(|was| was != cfg.hybrid_threshold.is_some()) {
                obs.backend_switches.incr();
            }
            (rmi, cfg)
        }
        Backend::BTree => {
            // One leaf per ~4 pages: the leaf models only partition the
            // key space; the pages inside each leaf do the searching.
            let leaves = (keys.len() / 512).clamp(1, keys.len().max(1));
            let cfg = RmiConfig::two_stage(TopModel::Linear, leaves).with_hybrid(0);
            (li_core::rmi::Rmi::build(keys.clone(), &cfg), cfg)
        }
        _ => retune_rmi(
            &keys,
            &TopModel::Linear,
            config.leaf_fraction,
            Some(&config.retune),
        ),
    };
    let shard = WritableShard::from_delta(
        DeltaIndex::from_trained(rmi, cfg, config.merge_threshold).with_tiering(config.max_runs),
    );
    shard.attach_obs(Arc::clone(obs));
    shard
}

/// A consistent, lock-free point-in-time view of a [`ShardedWritable`]:
/// the router and one [`DeltaSnapshot`] per shard, all captured from
/// one topology generation. Reads compose exactly like the live
/// structure's (ownership routing + per-shard snapshot queries), with
/// no lock taken.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot {
    router: ShardRouter,
    snaps: Vec<DeltaSnapshot>,
    /// `prefix[s]` = keys in shards `0..s` at capture time;
    /// `prefix[shard_count]` = total.
    prefix: Vec<usize>,
    generation: u64,
}

impl ShardedSnapshot {
    /// Whether `key` existed when the snapshot was taken.
    pub fn contains(&self, key: u64) -> bool {
        self.snaps[self.router.route_owner(key)].contains(key)
    }

    /// Number of keys `< key` at capture time (global lower-bound
    /// rank): the owner shard's local rank plus the lengths of every
    /// shard below it (all of whose keys are `< key` by the ownership
    /// invariant).
    pub fn rank(&self, key: u64) -> usize {
        let s = self.router.route_owner(key);
        self.prefix[s] + self.snaps[s].rank(key)
    }

    /// Total keys at capture time.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        // Invariant (constructor-enforced, not an I/O or config state):
        // `snapshot()` seeds `prefix` with an unconditional `push(0)`
        // before appending one entry per shard, so `prefix.len() ==
        // snaps.len() + 1 >= 1` on every constructed value and `last()`
        // cannot be `None`.
        self.prefix.last().copied().unwrap_or(0)
    }

    /// Whether the snapshot holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards in the captured topology.
    pub fn shard_count(&self) -> usize {
        self.snaps.len()
    }

    /// Topology generation this snapshot was captured from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The captured per-shard views (for cross-shard assertions in
    /// tests: each shard's keys must lie inside its ownership range).
    pub fn shard_snapshots(&self) -> &[DeltaSnapshot] {
        &self.snaps
    }

    /// The captured router (its boundaries are the ownership bounds).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// All keys in `[lo, hi)` at capture time, sorted: per-shard scans
    /// over the owner range of `lo..=hi`, concatenated (globally sorted
    /// by the ownership invariant).
    pub fn range_keys(&self, lo: u64, hi: u64) -> Vec<u64> {
        if hi <= lo {
            return Vec::new();
        }
        let s_lo = self.router.route_owner(lo);
        let s_hi = self.router.route_owner(hi);
        let mut out = Vec::new();
        for s in s_lo..=s_hi {
            out.extend(self.snaps[s].range_keys(lo, hi));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ShardedWritableConfig {
        ShardedWritableConfig {
            merge_threshold: 8,
            leaf_fraction: 1.0 / 16.0,
            check_interval: 16,
            rebalance: RebalanceConfig {
                max_shard_len: 64,
                merge_max_len: 16,
                max_mean_err: None,
                max_shards: 16,
            },
            ..ShardedWritableConfig::default()
        }
    }

    fn tiered_cfg(max_runs: usize) -> ShardedWritableConfig {
        ShardedWritableConfig {
            max_runs,
            ..small_cfg()
        }
    }

    #[test]
    fn tiered_inserts_seal_runs_and_compact_inline_without_a_worker() {
        // Threshold 8, max_runs 2: every 8 fresh keys seal a run, every
        // second seal fills the stack — with no worker attached the
        // same insert compacts inline.
        let data: Vec<u64> = (0..64u64).map(|i| i * 100).collect();
        let sw = ShardedWritable::new(data.clone(), 2, tiered_cfg(2));
        let mut oracle: std::collections::BTreeSet<u64> = data.iter().copied().collect();
        for k in 0..400u64 {
            let key = k * 7 + 1;
            assert_eq!(sw.insert(key), oracle.insert(key), "key {key}");
        }
        assert!(sw.compactions() >= 1, "full stacks must compact inline");
        // Nothing is ever left over-stacked: the insert that fills a
        // stack compacts it before returning.
        assert!(sw.run_count() < 2 * sw.shard_count());
        let want: Vec<u64> = oracle.iter().copied().collect();
        assert_eq!(sw.range_keys(0, u64::MAX), want);
        assert_eq!(sw.len(), want.len());
        for &k in want.iter().step_by(17) {
            assert!(sw.contains(k), "k={k}");
        }
        // Tier accounting: base keys + sealed runs + pending buffers
        // partition the keyset exactly.
        let snap = sw.snapshot();
        let base_total: usize = snap
            .shard_snapshots()
            .iter()
            .map(|s| {
                use li_index::RangeIndex as _;
                s.base_index().key_store().len()
            })
            .sum();
        assert_eq!(base_total + sw.sealed_keys() + sw.pending(), want.len());
    }

    #[test]
    fn untiered_mode_never_seals_or_compacts() {
        let sw = ShardedWritable::new(vec![0u64], 1, small_cfg());
        for k in 1..=300u64 {
            sw.insert(k * 2);
        }
        assert_eq!(sw.run_count(), 0);
        assert_eq!(sw.sealed_keys(), 0);
        assert_eq!(sw.compactions(), 0);
    }

    #[test]
    fn builds_and_serves_like_the_oracle() {
        let data: Vec<u64> = (0..200u64).map(|i| i * 3).collect();
        let sw = ShardedWritable::new(data.clone(), 4, small_cfg());
        assert_eq!(sw.shard_count(), 4);
        assert_eq!(sw.len(), 200);
        for q in [0u64, 1, 3, 299, 300, 597, 600, u64::MAX] {
            assert_eq!(sw.contains(q), data.binary_search(&q).is_ok(), "q={q}");
            assert_eq!(sw.rank(q), data.partition_point(|&k| k < q), "q={q}");
        }
    }

    #[test]
    fn inserts_route_to_owner_shards_and_preserve_order() {
        let data: Vec<u64> = (0..100u64).map(|i| i * 10).collect();
        let sw = ShardedWritable::new(data, 5, small_cfg());
        assert!(sw.insert(501));
        assert!(!sw.insert(501), "duplicate reports false");
        assert!(!sw.insert(500), "existing key reports false");
        assert!(sw.contains(501));
        // The full scan is globally sorted (ownership invariant).
        let all = sw.range_keys(0, u64::MAX);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(all.len(), 101);
    }

    #[test]
    fn boundary_keys_have_exactly_one_home() {
        let data: Vec<u64> = (0..90u64).collect();
        let sw = ShardedWritable::new(data, 3, small_cfg());
        for b in sw.bounds() {
            assert!(!sw.insert(b), "boundary key {b} already owned exactly once");
        }
        assert_eq!(sw.len(), 90, "no duplicate slipped across a boundary");
    }

    #[test]
    fn load_triggered_split_grows_the_topology() {
        let cfg = small_cfg();
        let sw = ShardedWritable::new(vec![0u64], 1, cfg.clone());
        for k in 1..=300u64 {
            sw.insert(k * 2);
        }
        assert!(sw.splits() >= 1, "expected at least one split");
        assert!(sw.shard_count() > 1);
        assert_eq!(
            sw.generation(),
            sw.splits() as u64 + sw.shard_merges() as u64
        );
        // Every shard within budget after rebalancing settles.
        sw.rebalance();
        for len in sw.shard_lens() {
            assert!(len <= cfg.rebalance.max_shard_len, "shard len {len}");
        }
        assert_eq!(sw.len(), 301);
        for k in (0..=300u64).step_by(13) {
            assert!(sw.contains(k * 2), "lost key {}", k * 2);
        }
    }

    #[test]
    fn cold_neighbors_merge() {
        // 8 tiny shards over 16 keys: every adjacent pair is far below
        // merge_max_len, so rebalance collapses the topology.
        let data: Vec<u64> = (0..16u64).map(|i| i * 5).collect();
        let sw = ShardedWritable::new(data.clone(), 8, small_cfg());
        assert_eq!(sw.shard_count(), 8);
        let actions = sw.rebalance();
        assert!(!actions.is_empty());
        assert!(sw.shard_merges() >= 1);
        assert!(sw.shard_count() < 8);
        // Nothing lost or duplicated.
        assert_eq!(sw.range_keys(0, u64::MAX), data);
    }

    #[test]
    fn snapshots_are_consistent_across_rebalances() {
        let data: Vec<u64> = (0..128u64).map(|i| i * 2).collect();
        let sw = ShardedWritable::new(data, 2, small_cfg());
        let before = sw.snapshot();
        let gen_before = before.generation();
        // Drive splits.
        for k in 0..200u64 {
            sw.insert(k * 2 + 1);
        }
        assert!(sw.splits() >= 1);
        let after = sw.snapshot();
        assert!(after.generation() > gen_before);
        // The old snapshot still serves its pre-rebalance state.
        assert_eq!(before.len(), 128);
        assert!(!before.contains(1));
        assert_eq!(before.rank(u64::MAX), 128);
        // The new one sees everything.
        assert_eq!(after.len(), 328);
        assert!(after.contains(1));
        // Shard/prefix bookkeeping agrees on both.
        for snap in [&before, &after] {
            let total = snap.rank(u64::MAX) + usize::from(snap.contains(u64::MAX));
            assert_eq!(total, snap.len());
            assert_eq!(snap.shard_count(), snap.shard_snapshots().len());
        }
    }

    #[test]
    fn error_triggered_split_fires_on_skewed_regions() {
        // Two regimes: a dense linear run then huge steps — one linear
        // leaf models it badly at coarse density.
        let mut data: Vec<u64> = (0..600u64).collect();
        data.extend((1..=600u64).map(|i| 1_000_000 + i * i * 1000));
        let cfg = ShardedWritableConfig {
            merge_threshold: 64,
            leaf_fraction: 1.0 / 4096.0, // 1 leaf: forced mispredictions
            retune: RetunePolicy {
                max_rounds: 0, // retuning disabled: the error must stay hot
                ..RetunePolicy::default()
            },
            check_interval: 0,
            max_runs: 0,
            backend: Backend::Rmi,
            observe: true,
            rebalance: RebalanceConfig {
                max_shard_len: 1 << 20, // never length-split
                merge_max_len: 8,
                max_mean_err: Some(4.0),
                max_shards: 32,
            },
        };
        let sw = ShardedWritable::new(data.clone(), 1, cfg);
        assert_eq!(sw.shard_count(), 1);
        let actions = sw.rebalance();
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, RebalanceAction::Split { .. })),
            "error-hot shard must split, got {actions:?}"
        );
        assert_eq!(sw.range_keys(0, u64::MAX), data);
    }

    #[test]
    fn retuning_densifies_skewed_shards() {
        // Step-heavy keys: at the base density the mean error is large;
        // the retune loop must densify until under the threshold (or
        // out of rounds) — asserted via the resulting error.
        let mut data: Vec<u64> = Vec::new();
        let mut v = 0u64;
        for i in 0..4000u64 {
            v += if (i / 100) % 2 == 0 { 1 } else { 100_000 };
            data.push(v);
        }
        let loose = ShardedWritableConfig {
            leaf_fraction: 1.0 / 2000.0,
            retune: RetunePolicy {
                max_mean_err: 4.0,
                max_rounds: 0,
                ..RetunePolicy::default()
            },
            ..ShardedWritableConfig::default()
        };
        let tuned = ShardedWritableConfig {
            retune: RetunePolicy {
                max_rounds: 6,
                ..loose.retune
            },
            ..loose.clone()
        };
        let obs = Arc::new(ServeMetrics::new());
        let coarse = build_retuned_shard(data.clone(), &loose, &obs);
        let dense = build_retuned_shard(data, &tuned, &obs);
        assert!(
            dense.base_stats().mean_abs_err < coarse.base_stats().mean_abs_err,
            "retuned {} vs coarse {}",
            dense.base_stats().mean_abs_err,
            coarse.base_stats().mean_abs_err
        );
        assert!(dense.base_stats().leaves > coarse.base_stats().leaves);
    }

    #[test]
    fn empty_and_tiny_initial_sets() {
        let cfg = small_cfg();
        let empty = ShardedWritable::new(Vec::<u64>::new(), 4, cfg.clone());
        assert_eq!(empty.shard_count(), 1, "clamped");
        assert!(empty.is_empty());
        assert!(!empty.contains(0));
        assert!(empty.insert(42));
        assert_eq!(empty.len(), 1);
        assert_eq!(empty.rank(u64::MAX), 1);

        let single = ShardedWritable::new(vec![9u64], 4, cfg);
        assert_eq!(single.shard_count(), 1);
        assert!(single.contains(9));
        assert_eq!(single.rank(9), 0);
        assert_eq!(single.rank(10), 1);
    }

    #[test]
    fn max_key_round_trips() {
        let sw = ShardedWritable::new(vec![0u64, 5, u64::MAX - 1], 3, small_cfg());
        assert!(sw.insert(u64::MAX));
        assert!(sw.contains(u64::MAX));
        assert!(!sw.insert(u64::MAX));
        let snap = sw.snapshot();
        assert_eq!(snap.rank(u64::MAX), 3);
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.range_keys(u64::MAX - 1, u64::MAX), vec![u64::MAX - 1]);
    }

    #[test]
    fn initial_partition_is_zero_copy() {
        let store = KeyStore::new((0..1000u64).collect());
        let sw = ShardedWritable::new(store.clone(), 8, ShardedWritableConfig::default());
        // 1 caller handle + at least one per shard base.
        assert!(store.strong_count() >= 9, "count {}", store.strong_count());
        drop(sw);
        assert_eq!(store.strong_count(), 1);
    }

    #[test]
    fn topology_poison_does_not_take_down_readers_or_writers() {
        let data: Vec<u64> = (0..200u64).map(|i| i * 5).collect();
        let sw = ShardedWritable::new(data, 3, small_cfg());
        // A thread dies holding the topology write lock *before* any
        // mutation — exactly the state every real panic site leaves
        // behind (the only write under this lock is the final
        // fully-built `Arc` swap; see the poison-recovery note on
        // `read_topo`).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = sw.topo.write().unwrap();
            panic!("rebalancer dies mid-critical-section");
        }));
        assert!(result.is_err());
        assert!(sw.topo.is_poisoned(), "the lock really was poisoned");

        // Reads, writes, snapshots and rebalancing all keep working.
        assert!(sw.contains(5));
        assert!(sw.insert(7));
        assert!(sw.contains(7));
        let snap = sw.snapshot();
        assert_eq!(snap.len(), 201);
        assert_eq!(sw.range_keys(0, 11), vec![0, 5, 7, 10]);
        sw.rebalance();
        assert!(sw.insert(8));
        assert_eq!(sw.len(), 202);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("li-serve-swdur-{}-{name}", std::process::id()))
    }

    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn durable_writes_recover_after_a_simulated_crash() {
        let snap = tmp("crash.lidx");
        let wal_path = tmp("crash.wal");
        let (_g1, _g2) = (Cleanup(snap.clone()), Cleanup(wal_path.clone()));
        let sw = ShardedWritable::new(
            (0..100u64).map(|i| i * 4).collect::<Vec<_>>(),
            2,
            small_cfg(),
        );
        sw.enable_wal(&wal_path, WalSyncPolicy::PerRecord).unwrap();
        sw.save(&snap).unwrap(); // checkpoint the pre-WAL state
        assert!(sw.insert(1001));
        assert!(sw.insert(1003));
        assert_eq!(
            sw.insert_batch(&[1005, 1003, 1007]),
            vec![true, false, true]
        );
        assert_eq!(sw.wal_last_lsn(), 3);
        assert!(sw.wal_failure().is_none());
        // Crash: drop without saving. Memory is gone; files survive.
        drop(sw);

        let (rec, report) = ShardedWritable::recover_with_config(
            &snap,
            &wal_path,
            WalSyncPolicy::PerRecord,
            small_cfg(),
        )
        .unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.replayed, 3);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(rec.len(), 104);
        for k in [1001u64, 1003, 1005, 1007] {
            assert!(rec.contains(k), "lost durable write {k}");
        }
        // The recovered structure keeps logging: a second crash cycle
        // (including a save, which truncates the log and re-stamps the
        // LSN watermark) still loses nothing.
        assert!(rec.insert(2001));
        rec.save(&snap).unwrap();
        assert!(rec.insert(2003));
        drop(rec);
        let again = ShardedWritable::recover(&snap, &wal_path, WalSyncPolicy::PerRecord).unwrap();
        assert!(again.contains(2001), "covered by the second snapshot");
        assert!(again.contains(2003), "replayed from the post-save log");
        assert_eq!(again.len(), 106);
    }

    #[test]
    fn recover_without_snapshot_replays_the_whole_log() {
        let snap = tmp("firstboot.lidx");
        let wal_path = tmp("firstboot.wal");
        let (_g1, _g2) = (Cleanup(snap.clone()), Cleanup(wal_path.clone()));
        let sw = ShardedWritable::new(Vec::new(), 1, small_cfg());
        sw.enable_wal(&wal_path, WalSyncPolicy::EveryN(1)).unwrap();
        for k in 0..20u64 {
            assert!(sw.try_insert(k * 3).unwrap());
        }
        drop(sw); // crash before the first save

        let (rec, report) = ShardedWritable::recover_with_config(
            &snap,
            &wal_path,
            WalSyncPolicy::EveryN(1),
            small_cfg(),
        )
        .unwrap();
        assert!(!report.snapshot_loaded);
        assert_eq!(report.replayed, 20);
        assert_eq!(rec.len(), 20);
        assert_eq!(
            rec.range_keys(0, u64::MAX),
            (0..20u64).map(|k| k * 3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn enabling_a_second_wal_is_refused() {
        let wal_path = tmp("double.wal");
        let _g = Cleanup(wal_path.clone());
        let sw = ShardedWritable::new(vec![1u64], 1, small_cfg());
        assert!(!sw.wal_attached());
        sw.enable_wal(&wal_path, WalSyncPolicy::default()).unwrap();
        assert!(sw.wal_attached());
        assert!(sw.enable_wal(&wal_path, WalSyncPolicy::default()).is_err());
        sw.wal_sync().unwrap();
    }

    #[test]
    fn concurrent_inserts_across_threads_settle_exactly() {
        let data: Vec<u64> = (0..2000u64).map(|i| i * 10).collect();
        let sw = ShardedWritable::new(data, 4, small_cfg());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sw = &sw;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        sw.insert((t * 500 + i) * 10 + 3);
                    }
                });
            }
        });
        assert_eq!(sw.len(), 4000);
        assert!(sw.splits() >= 1, "inserts must have driven splits");
        let all = sw.range_keys(0, u64::MAX);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(all.len(), 4000);
    }
}
