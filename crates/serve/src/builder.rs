//! Pluggable per-shard index construction.
//!
//! A [`ShardBuilder`] turns one zero-copy shard slice of the shared
//! [`KeyStore`] into whatever [`RangeIndex`] backend should serve that
//! shard. Builders for the paper's main structures are provided (RMI,
//! B-Tree, interpolation B-Tree, FAST-style tree); anything else only
//! has to implement the one-method trait.

use li_btree::{BTreeIndex, FastTree, InterpBTree};
use li_core::rmi::{Rmi, RmiConfig, TopModel};
use li_index::{KeyStore, RangeIndex};

/// Builds the per-shard index backend over one shard's key slice.
///
/// Implementations must be `Send + Sync` so one builder can construct
/// shards from multiple threads and live inside shared serving state.
pub trait ShardBuilder: Send + Sync {
    /// Build the backend over `shard` — a zero-copy slice of the full
    /// key store (implementations must hand the store to the index
    /// as-is to preserve the shared allocation).
    fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex>;

    /// Human-readable backend name, e.g. `"rmi"` or `"btree(page=128)"`.
    fn name(&self) -> String;
}

/// Per-shard Recursive Model Index. The leaf count scales with the
/// shard size (`leaf_fraction` models per key, min 1) so every shard
/// gets the same model density regardless of shard count.
#[derive(Debug, Clone)]
pub struct RmiShardBuilder {
    top: TopModel,
    leaf_fraction: f64,
}

impl RmiShardBuilder {
    /// Linear-top RMI with the workspace's default model density
    /// (1 leaf model per ~200 keys, matching the fig4 sweet spot).
    pub fn new() -> Self {
        Self {
            top: TopModel::Linear,
            leaf_fraction: 1.0 / 200.0,
        }
    }

    /// Override the leaf-model density (leaf models per key).
    pub fn with_leaf_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction.is_finite());
        self.leaf_fraction = fraction;
        self
    }
}

impl Default for RmiShardBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardBuilder for RmiShardBuilder {
    fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex> {
        let leaves = ((shard.len() as f64 * self.leaf_fraction).round() as usize).max(1);
        let cfg = RmiConfig::two_stage(self.top.clone(), leaves);
        Box::new(Rmi::build(shard, &cfg))
    }

    fn name(&self) -> String {
        format!("rmi(leaf_fraction={})", self.leaf_fraction)
    }
}

/// Per-shard cache-optimized B-Tree at a fixed page size.
#[derive(Debug, Clone)]
pub struct BTreeShardBuilder {
    page_size: usize,
}

impl BTreeShardBuilder {
    /// B-Tree shards with the given page size (the paper's reference
    /// configuration is 128).
    pub fn new(page_size: usize) -> Self {
        Self { page_size }
    }
}

impl ShardBuilder for BTreeShardBuilder {
    fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex> {
        Box::new(BTreeIndex::new(shard, self.page_size))
    }

    fn name(&self) -> String {
        format!("btree(page={})", self.page_size)
    }
}

/// Per-shard fixed-budget interpolation B-Tree (Figure 5 baseline).
#[derive(Debug, Clone)]
pub struct InterpShardBuilder {
    budget_bytes: usize,
}

impl InterpShardBuilder {
    /// Interpolation B-Tree shards, each fitted into `budget_bytes` of
    /// index overhead.
    pub fn new(budget_bytes: usize) -> Self {
        Self { budget_bytes }
    }
}

impl ShardBuilder for InterpShardBuilder {
    fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex> {
        Box::new(InterpBTree::with_budget(shard, self.budget_bytes))
    }

    fn name(&self) -> String {
        format!("interp(budget={})", self.budget_bytes)
    }
}

/// Per-shard FAST-style implicit tree — exact on duplicate-heavy
/// keysets, which makes it the oracle-faithful backend for multiset
/// workloads.
#[derive(Debug, Clone, Default)]
pub struct FastShardBuilder;

impl ShardBuilder for FastShardBuilder {
    fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex> {
        Box::new(FastTree::new(shard))
    }

    fn name(&self) -> String {
        "fast".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_preserve_the_shared_allocation() {
        let store = KeyStore::new((0..2000u64).map(|i| i * 2).collect());
        let builders: Vec<Box<dyn ShardBuilder>> = vec![
            Box::new(RmiShardBuilder::new()),
            Box::new(BTreeShardBuilder::new(64)),
            Box::new(InterpShardBuilder::new(2048)),
            Box::new(FastShardBuilder),
        ];
        for b in &builders {
            let idx = b.build(store.slice(100..900));
            assert!(idx.key_store().ptr_eq(&store), "{}", b.name());
            assert_eq!(idx.data().len(), 800, "{}", b.name());
            assert_eq!(idx.lower_bound(store[100]), 0, "{}", b.name());
        }
    }

    #[test]
    fn rmi_builder_scales_leaves_with_shard_size() {
        let store = KeyStore::new((0..10_000u64).collect());
        let b = RmiShardBuilder::new().with_leaf_fraction(1.0 / 100.0);
        let idx = b.build(store.clone());
        // 10k keys at 1/100 density: the build must succeed and stay
        // exact; leaf count is internal, correctness is the contract.
        assert_eq!(idx.lower_bound(5000), 5000);
        let tiny = b.build(store.slice(0..3));
        assert_eq!(tiny.lower_bound(2), 2);
    }
}
