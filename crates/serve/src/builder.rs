//! Pluggable per-shard index construction.
//!
//! A [`ShardBuilder`] turns one zero-copy shard slice of the shared
//! [`KeyStore`] into whatever [`RangeIndex`] backend should serve that
//! shard. Builders for the paper's main structures are provided (RMI,
//! B-Tree, interpolation B-Tree, FAST-style tree); anything else only
//! has to implement the one-method trait.

use li_btree::{BTreeIndex, FastTree, InterpBTree};
use li_core::rmi::{Rmi, RmiConfig, TopModel};
use li_index::{KeyStore, RangeIndex};

/// Builds the per-shard index backend over one shard's key slice.
///
/// Implementations must be `Send + Sync` so one builder can construct
/// shards from multiple threads and live inside shared serving state.
pub trait ShardBuilder: Send + Sync {
    /// Build the backend over `shard` — a zero-copy slice of the full
    /// key store (implementations must hand the store to the index
    /// as-is to preserve the shared allocation).
    fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex>;

    /// Human-readable backend name, e.g. `"rmi"` or `"btree(page=128)"`.
    fn name(&self) -> String;
}

/// Per-shard retuning policy: rebuild a shard at doubled leaf density
/// while its error statistics stay hot.
///
/// # Examples
/// ```
/// use li_serve::{RetunePolicy, RmiShardBuilder, ShardBuilder};
///
/// // Densify any shard whose mean absolute error exceeds 8 positions,
/// // doubling the leaf count up to 4 times.
/// let builder = RmiShardBuilder::new().with_retune(RetunePolicy {
///     max_mean_err: 8.0,
///     max_abs_err: u64::MAX, // max-error trigger disabled
///     max_rounds: 4,
/// });
/// let idx = builder.build((0..5_000u64).map(|i| i * 3).collect::<Vec<_>>().into());
/// assert_eq!(idx.lower_bound(3 * 1234), 1234);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RetunePolicy {
    /// Retrain while the shard's mean absolute error exceeds this.
    pub max_mean_err: f64,
    /// Retrain while the shard's max absolute error exceeds this
    /// (`u64::MAX` disables the max-error trigger).
    pub max_abs_err: u64,
    /// Maximum rebuilds per shard.
    pub max_rounds: usize,
}

impl Default for RetunePolicy {
    fn default() -> Self {
        Self {
            max_mean_err: 32.0,
            max_abs_err: u64::MAX,
            max_rounds: 3,
        }
    }
}

/// Per-shard Recursive Model Index. The leaf count scales with the
/// shard size (`leaf_fraction` models per key, min 1) so every shard
/// gets the same model density regardless of shard count; an optional
/// [`RetunePolicy`] densifies individual shards whose key region turns
/// out hard to model (skewed regions get more leaves instead of one
/// global density for everyone — the per-shard retuning the ROADMAP
/// called for).
#[derive(Debug, Clone)]
pub struct RmiShardBuilder {
    top: TopModel,
    leaf_fraction: f64,
    retune: Option<RetunePolicy>,
}

impl RmiShardBuilder {
    /// Linear-top RMI with the workspace's default model density
    /// (1 leaf model per ~200 keys, matching the fig4 sweet spot).
    pub fn new() -> Self {
        Self {
            top: TopModel::Linear,
            leaf_fraction: 1.0 / 200.0,
            retune: None,
        }
    }

    /// Override the leaf-model density (leaf models per key).
    pub fn with_leaf_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction.is_finite());
        self.leaf_fraction = fraction;
        self
    }

    /// Enable per-shard retuning: shards whose trained error stats
    /// exceed the policy's thresholds retrain at doubled leaf density,
    /// up to `max_rounds` times.
    pub fn with_retune(mut self, policy: RetunePolicy) -> Self {
        assert!(
            policy.max_mean_err >= 0.0 && policy.max_mean_err.is_finite(),
            "max_mean_err must be finite and >= 0"
        );
        self.retune = Some(policy);
        self
    }

    /// Build the concrete RMI for one shard, applying the retune loop.
    fn build_rmi(&self, shard: KeyStore) -> Rmi {
        retune_rmi(&shard, &self.top, self.leaf_fraction, self.retune.as_ref()).0
    }
}

/// The one retune loop both the read path ([`RmiShardBuilder`]) and the
/// write path (`ShardedWritable` shard rebuilds) share: train an RMI
/// over `keys` at `leaf_fraction` density, doubling the density while
/// the trained error stats exceed the policy's thresholds (up to
/// `max_rounds` retries; leaf count saturates at one per key). Returns
/// the trained RMI and the configuration it was built with, so callers
/// that retrain later (delta merges) reuse the chosen density.
pub(crate) fn retune_rmi(
    keys: &KeyStore,
    top: &TopModel,
    leaf_fraction: f64,
    policy: Option<&RetunePolicy>,
) -> (Rmi, RmiConfig) {
    let rounds = policy.map_or(0, |p| p.max_rounds);
    let mut fraction = leaf_fraction;
    // Structured so the hot path cannot panic: every round *returns* a
    // trained model (no `Option` + `expect` to get wrong), and the
    // round counter bounds the loop exactly like `0..=rounds` did.
    let mut round = 0usize;
    loop {
        let leaves = ((keys.len() as f64 * fraction).round() as usize).clamp(1, keys.len().max(1));
        let cfg = RmiConfig::two_stage(top.clone(), leaves);
        let rmi = Rmi::build(keys.clone(), &cfg);
        let hot = policy.is_some_and(|p| {
            rmi.stats().mean_abs_err > p.max_mean_err || rmi.stats().max_abs_err > p.max_abs_err
        });
        let saturated = leaves >= keys.len().max(1);
        if !hot || saturated || round >= rounds {
            return (rmi, cfg);
        }
        round += 1;
        fraction *= 2.0;
    }
}

impl Default for RmiShardBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardBuilder for RmiShardBuilder {
    fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex> {
        Box::new(self.build_rmi(shard))
    }

    fn name(&self) -> String {
        format!(
            "rmi(leaf_fraction={}{})",
            self.leaf_fraction,
            if self.retune.is_some() { ",retune" } else { "" }
        )
    }
}

/// Per-shard cache-optimized B-Tree at a fixed page size.
#[derive(Debug, Clone)]
pub struct BTreeShardBuilder {
    page_size: usize,
}

impl BTreeShardBuilder {
    /// B-Tree shards with the given page size (the paper's reference
    /// configuration is 128).
    pub fn new(page_size: usize) -> Self {
        Self { page_size }
    }
}

impl ShardBuilder for BTreeShardBuilder {
    fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex> {
        Box::new(BTreeIndex::new(shard, self.page_size))
    }

    fn name(&self) -> String {
        format!("btree(page={})", self.page_size)
    }
}

/// Per-shard fixed-budget interpolation B-Tree (Figure 5 baseline).
#[derive(Debug, Clone)]
pub struct InterpShardBuilder {
    budget_bytes: usize,
}

impl InterpShardBuilder {
    /// Interpolation B-Tree shards, each fitted into `budget_bytes` of
    /// index overhead.
    pub fn new(budget_bytes: usize) -> Self {
        Self { budget_bytes }
    }
}

impl ShardBuilder for InterpShardBuilder {
    fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex> {
        Box::new(InterpBTree::with_budget(shard, self.budget_bytes))
    }

    fn name(&self) -> String {
        format!("interp(budget={})", self.budget_bytes)
    }
}

/// Per-shard FAST-style implicit tree — exact on duplicate-heavy
/// keysets, which makes it the oracle-faithful backend for multiset
/// workloads.
#[derive(Debug, Clone, Default)]
pub struct FastShardBuilder;

impl ShardBuilder for FastShardBuilder {
    fn build(&self, shard: KeyStore) -> Box<dyn RangeIndex> {
        Box::new(FastTree::new(shard))
    }

    fn name(&self) -> String {
        "fast".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_preserve_the_shared_allocation() {
        let store = KeyStore::new((0..2000u64).map(|i| i * 2).collect());
        let builders: Vec<Box<dyn ShardBuilder>> = vec![
            Box::new(RmiShardBuilder::new()),
            Box::new(BTreeShardBuilder::new(64)),
            Box::new(InterpShardBuilder::new(2048)),
            Box::new(FastShardBuilder),
        ];
        for b in &builders {
            let idx = b.build(store.slice(100..900));
            assert!(idx.key_store().ptr_eq(&store), "{}", b.name());
            assert_eq!(idx.data().len(), 800, "{}", b.name());
            assert_eq!(idx.lower_bound(store[100]), 0, "{}", b.name());
        }
    }

    #[test]
    fn retune_densifies_a_skewed_shard() {
        // A skewed shard: dense linear run, then huge jumps — a coarse
        // per-leaf linear fit mispredicts badly.
        let mut keys: Vec<u64> = (0..3000u64).collect();
        keys.extend((1..=3000u64).map(|i| 10_000_000 + i * i * 500));
        let store = KeyStore::new(keys);

        let coarse = RmiShardBuilder::new().with_leaf_fraction(1.0 / 3000.0);
        let tuned = coarse.clone().with_retune(RetunePolicy {
            max_mean_err: 8.0,
            max_abs_err: u64::MAX,
            max_rounds: 6,
        });
        let base = coarse.build_rmi(store.clone());
        let dense = tuned.build_rmi(store.clone());
        assert!(
            base.stats().mean_abs_err > 8.0,
            "precondition: the skewed shard must be hot at coarse density, got {}",
            base.stats().mean_abs_err
        );
        assert!(
            dense.stats().mean_abs_err < base.stats().mean_abs_err,
            "retuned {} vs coarse {}",
            dense.stats().mean_abs_err,
            base.stats().mean_abs_err
        );
        assert!(dense.stats().leaves > base.stats().leaves);
        // Retuning never changes answers, only error envelopes.
        for q in (0..6000u64).step_by(97) {
            assert_eq!(dense.lower_bound(q), base.lower_bound(q), "q={q}");
        }
        // Zero-copy preserved through the retune loop.
        assert!(dense.key_store().ptr_eq(&store));
    }

    #[test]
    fn retune_leaves_easy_shards_alone() {
        // Near-linear keys are already under any sane threshold: the
        // retuned build must match the plain build's density.
        let store = KeyStore::new((0..5000u64).map(|i| i * 7).collect());
        let plain = RmiShardBuilder::new();
        let tuned = plain.clone().with_retune(RetunePolicy::default());
        let a = plain.build_rmi(store.clone());
        let b = tuned.build_rmi(store);
        assert_eq!(a.stats().leaves, b.stats().leaves);
    }

    #[test]
    fn rmi_builder_scales_leaves_with_shard_size() {
        let store = KeyStore::new((0..10_000u64).collect());
        let b = RmiShardBuilder::new().with_leaf_fraction(1.0 / 100.0);
        let idx = b.build(store.clone());
        // 10k keys at 1/100 density: the build must succeed and stay
        // exact; leaf count is internal, correctness is the contract.
        assert_eq!(idx.lower_bound(5000), 5000);
        let tiny = b.build(store.slice(0..3));
        assert_eq!(tiny.lower_bound(2), 2);
    }
}
