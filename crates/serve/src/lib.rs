//! # li-serve — the sharded concurrent serving layer
//!
//! The paper frames learned indexes as read-heavy serving structures;
//! this crate is the workspace's answer to serving them at scale: one
//! shared sorted key array, range-partitioned into N zero-copy shards,
//! each served by whatever index backend fits it best, with concurrent
//! batched reads and a snapshot-consistent write path.
//!
//! * [`ShardedIndex`] — the tentpole: partitions one [`KeyStore`] into
//!   N `KeyStore::slice` views (no key copied), builds a pluggable
//!   [`ShardBuilder`] backend per shard, and routes every lookup
//!   through a learned shard router with an O(1)-verified answer and a
//!   binary-search fallback. It implements [`RangeIndex`] itself, so
//!   every existing harness and property suite works against it
//!   unchanged.
//! * [`ShardRouter`] — routing as a recursive application of the
//!   paper's thesis: a linear model over the shard boundary keys with a
//!   certified last-mile window.
//! * [`ShardedIndex::lower_bound_batch_parallel`] — the concurrent read
//!   path: scoped threads fan contiguous sub-batches out, each running
//!   the per-shard bucketed batch plan.
//! * [`WritableShard`] — the single-shard write path: a `DeltaIndex`
//!   (Appendix D.1) behind an `RwLock`; merges retrain and swap the
//!   whole base behind an `Arc`, so readers on a [`DeltaSnapshot`] are
//!   never torn across a retrain.
//! * [`ShardedWritable`] — the *sharded* write path: N
//!   [`WritableShard`]s behind an `Arc`-swapped topology (ownership
//!   bounds + router + shards published as one unit), with concurrent
//!   key-routed inserts (scalar and batched —
//!   [`ShardedWritable::insert_batch`] takes the topology lock once and
//!   hands each touched shard its whole bucket), consistent cross-shard
//!   snapshots ([`ShardedSnapshot`]), and a dynamic rebalancer
//!   ([`rebalance`]) that splits hot shards, merges cold neighbors,
//!   and retunes each rebuilt shard's model density to its keys.
//! * [`select`] — adaptive per-shard backend selection:
//!   [`Backend::Auto`] probes each shard with a retuned RMI,
//!   grid-searches backend × tuning over the probe's `RmiStats` under
//!   a fitted cost model, and builds the winner — so a hard-to-learn
//!   shard becomes a B-Tree and a smooth one stays an RMI, per shard,
//!   automatically. The write tier re-runs selection on every shard
//!   rebuild; every decision is counted and traced.
//! * [`persist`] — the persistence tier: save a trained
//!   [`ShardedIndex`] or [`ShardedWritable`] to one page-aligned
//!   snapshot file (coefficients + key payload, checksummed, published
//!   atomically) and load it back with the key array **mapped** and
//!   zero models retrained — a warm restart.
//! * [`RebalanceWorker`] — background rebalancing: a dedicated thread
//!   that owns split/merge execution while attached, so inserts only
//!   record pressure into lock-free counters and signal over a channel;
//!   rebuilds happen off the insert path and are published with an
//!   incremental straggler hand-off ([`rebalance_worker`]).
//! * [`obs`] — the observability surface: every structure owns a
//!   [`ServeMetrics`] bundle of `li-obs` striped counters, latency
//!   histograms and a structural-event trace ring;
//!   [`ShardedWritable::metrics`] reads it all back as one consistent
//!   [`MetricsSnapshot`] and `render_text` renders the Prometheus-style
//!   exposition.
//! * [`wal`] — the durability tier for *live* writes: a per-structure
//!   append-only write-ahead log (checksummed records, group-commit
//!   [`WalSyncPolicy`]) that acknowledged writes hit before the
//!   in-memory tiers, truncated at every snapshot publish.
//!   [`ShardedWritable::recover`] loads the snapshot (zero training),
//!   replays the WAL tail, and truncates torn records — no
//!   acknowledged-durable write is ever lost.
//!
//! The partition arithmetic (balanced offsets, boundary keys, the
//! duplicates-safe routing proof, ownership routing and split points)
//! lives in `li_index::partition`, so any future partitioned structure
//! shares the exact same semantics. The full read-path / write-path /
//! rebalance-lifecycle walkthrough lives in `ARCHITECTURE.md` at the
//! repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod obs;
pub mod persist;
pub mod rebalance;
pub mod rebalance_worker;
pub mod router;
pub mod select;
pub mod sharded;
pub mod sharded_writable;
pub mod wal;
pub mod writable;

pub use builder::{
    BTreeShardBuilder, FastShardBuilder, InterpShardBuilder, RetunePolicy, RmiShardBuilder,
    ShardBuilder,
};
pub use li_core::delta::DeltaSnapshot;
pub use li_index::{KeyStore, MappedFile, Prediction, RangeIndex};
pub use li_obs::{MetricsRegistry, MetricsSnapshot};
pub use obs::ServeMetrics;
pub use persist::PersistError;
pub use rebalance::{RebalanceAction, RebalanceConfig};
pub use rebalance_worker::RebalanceWorker;
pub use router::ShardRouter;
pub use select::{choose, choose_multiset, AutoShardBuilder, Backend, BackendChoice};
pub use sharded::ShardedIndex;
pub use sharded_writable::{
    RecoveryReport, ShardedSnapshot, ShardedWritable, ShardedWritableConfig,
};
pub use wal::{Wal, WalError, WalSyncPolicy};
pub use writable::WritableShard;
