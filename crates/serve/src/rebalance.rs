//! Rebalancing policy for the sharded write path.
//!
//! The policy is a pure function over per-shard observations —
//! [`plan`] looks at shard lengths and the split-on-error signal and
//! proposes at most one [`RebalanceAction`] — so it can be unit-tested
//! exhaustively without touching locks or building indexes. The
//! executor ([`crate::ShardedWritable::rebalance`]) applies actions
//! under the topology write lock and re-plans until the topology is
//! stable.
//!
//! Two stability arguments are designed into the thresholds:
//!
//! * **Split/merge hysteresis** — a split requires more load than a
//!   merge tolerates: a length-triggered split needs
//!   `len > max_shard_len`, while a merge needs the *combined* pair
//!   `<= merge_max_len < max_shard_len`. The two halves of a fresh
//!   split together exceed `max_shard_len`, so they can never be
//!   re-merged by the very next plan.
//! * **Error-split floor** — an error-triggered split additionally
//!   requires `len > merge_max_len`. Without it, a small shard with a
//!   stubbornly bad model could split into a pair that immediately
//!   qualifies as a cold merge candidate, oscillating forever.

/// Thresholds driving shard splits and merges.
///
/// # Examples
/// ```
/// use li_serve::rebalance::{plan, RebalanceAction, RebalanceConfig};
///
/// let cfg = RebalanceConfig {
///     max_shard_len: 100, // split beyond 100 keys
///     merge_max_len: 40,  // merge pairs holding <= 40 keys combined
///     max_mean_err: None, // no error-triggered splits
///     max_shards: 8,
/// };
/// cfg.validate(); // merge_max_len < max_shard_len: no oscillation
///
/// // An overloaded shard splits before a cold pair merges…
/// assert_eq!(
///     plan(&[150, 10, 5], &[false; 3], &cfg),
///     Some(RebalanceAction::Split { shard: 0 })
/// );
/// // …and a balanced topology plans nothing.
/// assert_eq!(plan(&[60, 70], &[false; 2], &cfg), None);
/// ```
#[derive(Debug, Clone)]
pub struct RebalanceConfig {
    /// Split a shard when its key count exceeds this.
    pub max_shard_len: usize,
    /// Merge an adjacent shard pair when their *combined* key count is
    /// at most this. Keep it at most `max_shard_len / 2` so splits and
    /// merges cannot oscillate (see the module docs).
    pub merge_max_len: usize,
    /// Split a shard (regardless of length, but see the error-split
    /// floor) when its base RMI's mean absolute error exceeds this.
    /// `None` disables error-triggered splits.
    pub max_mean_err: Option<f64>,
    /// Hard cap on the shard count; splits stop proposing at the cap.
    pub max_shards: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            max_shard_len: 1 << 20,
            merge_max_len: 1 << 18,
            max_mean_err: None,
            max_shards: 64,
        }
    }
}

impl RebalanceConfig {
    /// Panics on configurations that cannot keep the topology stable.
    pub fn validate(&self) {
        assert!(self.max_shard_len >= 2, "max_shard_len must be >= 2");
        assert!(
            self.merge_max_len < self.max_shard_len,
            "merge_max_len must be < max_shard_len (split/merge hysteresis)"
        );
        assert!(self.max_shards >= 1, "max_shards must be >= 1");
        if let Some(t) = self.max_mean_err {
            assert!(t >= 0.0 && t.is_finite(), "max_mean_err must be finite");
        }
    }
}

/// One topology change proposed by [`plan`] and applied by the
/// executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceAction {
    /// Split shard `shard` into two at its balanced split point.
    Split {
        /// Index of the shard to split.
        shard: usize,
    },
    /// Merge shards `left` and `left + 1` into one.
    Merge {
        /// Index of the left shard of the pair.
        left: usize,
    },
}

/// Propose the next topology change, or `None` when the topology is
/// stable under the observations.
///
/// * `lens[s]` — current key count of shard `s`.
/// * `err_hot[s]` — whether shard `s`'s base-model error exceeds the
///   configured threshold (all-false when error splits are disabled).
///
/// Splits take priority over merges (an overloaded shard hurts every
/// query routed to it; a cold pair only wastes a little memory). Among
/// split candidates the longest shard wins; among merge candidates the
/// coldest adjacent pair wins.
///
/// # Examples
/// ```
/// use li_serve::rebalance::{plan, RebalanceAction, RebalanceConfig};
///
/// let cfg = RebalanceConfig {
///     max_shard_len: 100,
///     merge_max_len: 40,
///     max_mean_err: Some(8.0),
///     max_shards: 8,
/// };
/// // The coldest adjacent pair merges once nothing needs splitting.
/// assert_eq!(
///     plan(&[10, 5, 90], &[false; 3], &cfg),
///     Some(RebalanceAction::Merge { left: 0 })
/// );
/// // An error-hot shard splits only above the merge budget (the
/// // "error-split floor" — its halves must not immediately re-merge).
/// assert_eq!(plan(&[30, 90], &[true, false], &cfg), None);
/// assert_eq!(
///     plan(&[70, 90], &[true, false], &cfg),
///     Some(RebalanceAction::Split { shard: 0 })
/// );
/// ```
pub fn plan(lens: &[usize], err_hot: &[bool], cfg: &RebalanceConfig) -> Option<RebalanceAction> {
    assert_eq!(lens.len(), err_hot.len(), "observation arity mismatch");
    let n = lens.len();

    // Splits: length overload first, then error overload. Both need at
    // least 2 keys to have a split point at all, and room under the cap.
    if n < cfg.max_shards {
        let overloaded = (0..n)
            .filter(|&s| lens[s] > cfg.max_shard_len && lens[s] >= 2)
            .max_by_key(|&s| lens[s]);
        if let Some(shard) = overloaded {
            return Some(RebalanceAction::Split { shard });
        }
        // Error-split floor: require len > merge_max_len so the two
        // halves cannot immediately become a cold merge candidate.
        let hot = (0..n)
            .filter(|&s| err_hot[s] && lens[s] > cfg.merge_max_len && lens[s] >= 2)
            .max_by_key(|&s| lens[s]);
        if let Some(shard) = hot {
            return Some(RebalanceAction::Split { shard });
        }
    }

    // Merges: the coldest adjacent pair, if it fits the merge budget.
    if n > 1 {
        let left = (0..n - 1).min_by_key(|&i| lens[i] + lens[i + 1])?;
        if lens[left] + lens[left + 1] <= cfg.merge_max_len {
            return Some(RebalanceAction::Merge { left });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RebalanceConfig {
        RebalanceConfig {
            max_shard_len: 100,
            merge_max_len: 40,
            max_mean_err: Some(8.0),
            max_shards: 8,
        }
    }

    #[test]
    fn stable_topology_plans_nothing() {
        let c = cfg();
        assert_eq!(plan(&[50, 60, 70], &[false; 3], &c), None);
        assert_eq!(plan(&[], &[], &c), None);
        assert_eq!(plan(&[5], &[false], &c), None, "singleton never merges");
    }

    #[test]
    fn longest_overloaded_shard_splits_first() {
        let c = cfg();
        assert_eq!(
            plan(&[101, 50, 200], &[false; 3], &c),
            Some(RebalanceAction::Split { shard: 2 })
        );
    }

    #[test]
    fn error_split_requires_the_floor() {
        let c = cfg();
        // Hot but small: below the merge_max_len floor — no split (it
        // would oscillate with the merge rule).
        assert_eq!(plan(&[30, 50], &[true, false], &c), None);
        // Hot and above the floor: split.
        assert_eq!(
            plan(&[41, 99], &[false, true], &c),
            Some(RebalanceAction::Split { shard: 1 })
        );
    }

    #[test]
    fn coldest_adjacent_pair_merges() {
        let c = cfg();
        assert_eq!(
            plan(&[10, 5, 90, 90], &[false; 4], &c),
            Some(RebalanceAction::Merge { left: 0 })
        );
        // Combined above the budget: stable.
        assert_eq!(plan(&[30, 30, 90], &[false; 3], &c), None);
    }

    #[test]
    fn split_respects_the_shard_cap() {
        let c = RebalanceConfig {
            max_shards: 2,
            ..cfg()
        };
        assert_eq!(plan(&[500, 90], &[false; 2], &c), None);
    }

    #[test]
    fn fresh_split_halves_cannot_remerge() {
        let c = cfg();
        // Any len that triggers a split...
        for len in [101usize, 150, 1000] {
            assert!(matches!(
                plan(&[len], &[false], &c),
                Some(RebalanceAction::Split { .. })
            ));
            // ...produces halves whose combined length is `len`, which
            // exceeds merge_max_len by construction — they may split
            // further (cascade) but can never be re-merged.
            let (a, b) = (len / 2, len - len / 2);
            assert!(
                !matches!(
                    plan(&[a, b], &[false, false], &c),
                    Some(RebalanceAction::Merge { .. })
                ),
                "len={len}"
            );
        }
    }

    #[test]
    fn validate_rejects_oscillating_thresholds() {
        let bad = RebalanceConfig {
            max_shard_len: 100,
            merge_max_len: 100,
            ..RebalanceConfig::default()
        };
        assert!(std::panic::catch_unwind(move || bad.validate()).is_err());
        cfg().validate();
        RebalanceConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn mismatched_observations_panic() {
        plan(&[1, 2], &[false], &cfg());
    }
}
