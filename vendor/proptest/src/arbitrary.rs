//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain generator.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Boost the probability of the extreme values — they are
                // where off-by-one and overflow bugs live.
                if rng.one_in(16) {
                    return if rng.one_in(2) { <$t>::MIN } else { <$t>::MAX };
                }
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning many magnitudes; no NaN/Inf, which the
        // workspace's numeric code treats as input errors.

        rng.unit_f64() * 2e9 - 1e9
    }
}
