//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use —
//! the `proptest!` macro, `prop_assert*`/`prop_assume!`, `any::<T>()`,
//! numeric range strategies, tuple strategies, collection strategies and
//! `[class]{m,n}` string-pattern strategies — with no external
//! dependencies. See `README.md` for the differences from the real crate
//! (chiefly: no shrinking).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Mirror of the real crate's `proptest::prop` facade: the module paths
/// tests reach through `prop::...` (currently only `prop::collection`).
pub mod prop {
    pub use crate::collection;
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a `proptest!` body; on failure the current
/// case is reported as a counterexample (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), left, right,
                ),
            ));
        }
    }};
}

/// `assert_ne!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Discard the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// The `proptest!` block macro: expands each
/// `fn name(arg in strategy, ...) { body }` into a `#[test]`-able
/// function that generates inputs and runs the body for the configured
/// number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.resolved_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < cases {
                attempts += 1;
                if attempts > cases.saturating_mul(20).saturating_add(256) {
                    panic!(
                        "proptest `{}`: too many rejected cases ({} attempts for {} cases)",
                        stringify!($name), attempts, cases,
                    );
                }
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let case_debug = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}\n")),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case #{}: {}\ninputs:\n{}",
                            stringify!($name), accepted, msg, case_debug,
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}
