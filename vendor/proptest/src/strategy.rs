//! The `Strategy` trait and the built-in value generators: numeric
//! ranges, tuples, and `Just`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type. The stand-in keeps only
/// the generation half of real proptest's Strategy (no shrink trees).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy producing one fixed (cloneable) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Occasionally pin the endpoints: cheap edge-case bias.
                if rng.one_in(16) {
                    return if rng.one_in(2) { self.start } else { self.end - 1 };
                }
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if rng.one_in(16) {
                    return if rng.one_in(2) { start } else { end };
                }
                let width = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (start as i128 + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
