//! Case-count configuration, failure plumbing and the deterministic RNG
//! behind the `proptest!` macro.

/// How many cases a `proptest!` function runs.
///
/// `PROPTEST_CASES` in the environment overrides the configured value,
/// exactly like the real crate. The built-in default is deliberately low
/// (64) so property suites finish in seconds on CI and laptops.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (before any env override).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.trim().parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it does not count.
    Reject(String),
    /// An assertion failed; the run panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Build a rejection (from `prop_assume!`).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Build a failure (from `prop_assert*!`).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// SplitMix64: tiny, fast, full-period, good enough for test-case
/// generation. Seeded deterministically per test (from the test's path)
/// so failures reproduce; `PROPTEST_RNG_SEED` perturbs the sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from an explicit value.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// An RNG seeded from a test's fully-qualified name (FNV-1a hash),
    /// optionally perturbed by `PROPTEST_RNG_SEED`.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(v) = extra.trim().parse::<u64>() {
                h ^= v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
        }
        TestRng { state: h }
    }

    /// Next full-width pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `1/n`.
    pub fn one_in(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }
}
