//! String strategies from a small regex subset.
//!
//! Real proptest treats `&str` as a regex-derived strategy. This
//! stand-in supports the subset the workspace's tests use — literal
//! characters, `[a-z0-9]`-style classes, and `{m}` / `{m,n}` / `?` /
//! `*` / `+` quantifiers — which covers patterns like `"[a-z0-9]{0,12}"`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

fn parse_pattern(pat: &str) -> Vec<Piece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pat:?}"));
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling `\\` in pattern {pat:?}"));
                i += 1;
                match c {
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    other => Atom::Literal(other),
                }
            }
            '.' => {
                i += 1;
                Atom::Class(vec![(' ', '~')])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pat:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| (hi as u64).saturating_sub(lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total.max(1));
            for &(lo, hi) in ranges {
                let span = (hi as u64) - (lo as u64) + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                }
                pick -= span;
            }
            ranges[0].0
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(gen_atom(&piece.atom, rng));
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}
