//! Collection strategies: `vec`, `hash_set`, `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::ops::Range;

/// Size bound for collection strategies (mirrors proptest's `SizeRange`
/// just enough to accept `usize` and `Range<usize>`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty collection size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`fn@vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` targeting a size drawn from `size`
/// (may come up short if the element domain is nearly exhausted).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        let mut budget = target.saturating_mul(10) + 16;
        while out.len() < target && budget > 0 {
            budget -= 1;
            out.insert(self.element.generate(rng));
        }
        out
    }
}

/// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `size`.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut budget = target.saturating_mul(10) + 16;
        while out.len() < target && budget > 0 {
            budget -= 1;
            out.insert(self.element.generate(rng));
        }
        out
    }
}
