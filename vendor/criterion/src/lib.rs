//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use with a simple
//! warm-up → sample → report-median loop and no external dependencies.
//! See `README.md` for the differences from the real crate.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` works as in the real crate.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost across measured calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many routine calls per setup batch.
    SmallInput,
    /// Large inputs: few routine calls per setup batch.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

impl BatchSize {
    fn iters_per_batch(self) -> u64 {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 4,
            BatchSize::PerIteration => 1,
        }
    }
}

#[derive(Debug, Clone)]
struct Config {
    measurement: Duration,
    warm_up: Duration,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
            sample_size: 20,
            filter: None,
        }
    }
}

/// The top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Apply the relevant `cargo bench` CLI arguments: an optional
    /// benchmark-name substring filter and `--quick`; everything else
    /// that real criterion accepts is parsed and ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--quiet" | "--verbose" | "--noplot" => {}
                "--quick" => {
                    self.config.measurement = Duration::from_millis(50);
                    self.config.warm_up = Duration::from_millis(10);
                    self.config.sample_size = 5;
                }
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" | "--profile-time" => {
                    args.next();
                }
                s if s.starts_with("--") => {}
                s => self.config.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let name = id.into();
        run_one(&self.config, &name, f);
        self
    }
}

/// A named group of benchmarks with shared timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Target time spent measuring each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Time spent warming up each benchmark before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up = d;
        self
    }

    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into());
        run_one(&self.config, &name, f);
        self
    }

    /// End the group (kept for API compatibility; reporting is inline).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Config, name: &str, mut f: F) {
    if let Some(filter) = &config.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        warm_up: config.warm_up,
        measurement: config.measurement,
        sample_size: config.sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    b.samples_ns.sort_unstable_by(|a, z| a.total_cmp(z));
    let median = if b.samples_ns.is_empty() {
        f64::NAN
    } else {
        b.samples_ns[b.samples_ns.len() / 2]
    };
    println!("bench: {name:<60} median {median:>12.1} ns/iter");
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure a routine with negligible per-call setup.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Measure a routine whose input is produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        size: BatchSize,
    ) {
        let batch = size.iters_per_batch();

        // Warm-up: run batches until the warm-up budget is spent, and
        // estimate the per-iteration cost for sample sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            for input in inputs {
                black_box(routine(input));
            }
            warm_iters += batch;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.5);

        // Size each sample so all samples together fill the measurement
        // budget, in whole batches.
        let budget_ns = self.measurement.as_nanos() as f64;
        let iters_per_sample = (budget_ns / est_ns / self.sample_size as f64)
            .ceil()
            .max(1.0) as u64;
        let batches_per_sample = iters_per_sample.div_ceil(batch);

        for _ in 0..self.sample_size {
            let mut timed = Duration::ZERO;
            let mut iters: u64 = 0;
            for _ in 0..batches_per_sample {
                let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
                let start = Instant::now();
                for input in inputs {
                    black_box(routine(input));
                }
                timed += start.elapsed();
                iters += batch;
            }
            self.samples_ns.push(timed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Bundle benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
